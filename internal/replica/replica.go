// Package replica implements the multi-threaded deep pipeline of paper
// Section 4 (Figures 5 and 6): the runnable replica that turns a consensus
// engine into a high-throughput permissioned blockchain node.
//
// A replica runs these stages, each on its own goroutine(s):
//
//   - one input-thread dedicated to client traffic and ReplicaInboxes
//     input-threads sharing replica traffic (Section 4.1);
//   - at the primary, BatchThreads batch-threads pulling client requests
//     from a shared lock-free queue, verifying client signatures, building
//     batches with a single digest, signing and proposing them
//     (Section 4.3);
//   - WorkerThreads worker lanes driving the consensus engine over
//     prepare/commit traffic (Sections 4.3–4.4): lane 0 owns control
//     traffic, further lanes step independent consensus instances in
//     parallel, routed by sequence number (Section 4.5's out-of-order
//     processing, now multi-threaded);
//   - an execute stage draining the in-order execution queue (txn % QC
//     slots, Section 4.6): one coordinating execute-thread that, with
//     ExecuteThreads E > 1, hash-partitions each committed batch's
//     write-set across E shard workers applying their partitions to the
//     store concurrently, then retires batches strictly in order (ledger
//     append, checkpoint digest, client responses). ExecPipelineDepth
//     P > 1 relaxes the per-batch barrier into cross-batch pipelining:
//     up to P batches in flight, with per-shard FIFO queues keeping
//     conflicting key partitions in batch order;
//   - one checkpoint-thread processing checkpoint traffic (Section 4.7);
//   - OutputThreads output-threads transmitting signed envelopes
//     (Section 4.1).
//
// Setting BatchThreads or ExecuteThreads to zero folds that stage into the
// worker-thread, reproducing the paper's 0B/0E configurations
// (Section 5.2); message and transaction buffers come from object pools
// (Section 4.8). The paper stopped at one execute-thread because arbitrary
// multi-threaded execution causes data conflicts; this replica goes
// further by exploiting that the workload's write-sets are known up front
// (write-only YCSB over a keyed table), so partitioning by key makes
// parallel execution conflict-free and deterministic.
package replica

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"resilientdb/internal/consensus"
	"resilientdb/internal/consensus/pbft"
	"resilientdb/internal/consensus/zyzzyva"
	"resilientdb/internal/crypto"
	"resilientdb/internal/ledger"
	"resilientdb/internal/pool"
	"resilientdb/internal/queue"
	"resilientdb/internal/store"
	"resilientdb/internal/transport"
	"resilientdb/internal/types"
)

// Protocol selects the consensus engine.
type Protocol int

// Supported protocols.
const (
	PBFT Protocol = iota + 1
	Zyzzyva
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case PBFT:
		return "pbft"
	case Zyzzyva:
		return "zyzzyva"
	default:
		return "invalid"
	}
}

// Config parameterizes a replica.
type Config struct {
	// ID is this replica's identifier; N the cluster size (n ≥ 3f+1).
	ID types.ReplicaID
	N  int
	// Protocol selects PBFT or Zyzzyva.
	Protocol Protocol
	// BatchSize is the number of transactions aggregated per consensus
	// batch (the paper's default is 100, Section 5.1).
	BatchSize int
	// BatchLinger flushes a partial batch after this much quiet time so
	// lightly loaded systems keep bounded latency.
	BatchLinger time.Duration
	// BatchThreads is B: 0 folds batching into the worker-thread.
	BatchThreads int
	// ExecuteThreads is E, the number of execution shards: 0 folds
	// execution into the worker-thread (the paper's 0E); 1 dedicates a
	// single serial execute-thread (the paper's 1E baseline). With E > 1
	// the execute stage keeps its single in-order coordinator but
	// hash-partitions each committed batch's write-set by key across E
	// shard workers that apply their partitions to the store concurrently.
	// Batches retire strictly in order (by default behind a per-batch
	// barrier; see ExecPipelineDepth), and because one key always maps to
	// the same shard and each shard applies its writes in batch order,
	// the ledger, checkpoint digests, and final store state are
	// byte-identical to serial execution. (The paper warns that arbitrary
	// multi-threaded execution causes data conflicts, Section 6
	// "Threading and Pipelining"; write-set partitioning is what makes
	// E > 1 conflict-free here.)
	ExecuteThreads int
	// ExecPipelineDepth relaxes the execute stage's per-batch barrier into
	// cross-batch pipelining (only meaningful with ExecuteThreads > 1;
	// default 1, the strict barrier). With depth P > 1 the coordinator may
	// fan out the write partitions of up to P committed batches before
	// waiting on the oldest batch's barrier. Because each shard worker
	// drains its queue in FIFO order and one key always maps to one shard,
	// a later batch's partition for shard s queues behind an earlier
	// batch's partition for the same shard — conflicting shards stay
	// ordered — while shards the earlier batch did not touch start
	// immediately. Ledger appends, checkpoint digests, and client
	// responses are still emitted strictly in sequence order at retire
	// time, so the result remains byte-identical to serial execution.
	ExecPipelineDepth int
	// OutputThreads is the number of transmitting threads (default 2).
	OutputThreads int
	// WorkerThreads is W: the number of parallel worker lanes stepping
	// the consensus engine (default 1, the paper's baseline single
	// worker-thread). With W > 1, sequence-carrying consensus messages
	// (pre-prepares, prepares, commits) are routed to lane seq mod W so
	// independent instances step in parallel on the lock-striped engine;
	// control traffic — client requests in 0B mode, view changes,
	// new-views, commit certificates — stays on lane 0 to preserve its
	// ordering. Engines that are not safe for concurrent stepping
	// (Zyzzyva's speculative history is inherently ordered) are
	// serialized behind a single lane regardless of W.
	WorkerThreads int
	// VerifyThreads is V: the number of parallel signature-verification
	// workers fed by the input-threads. With V > 0 peer envelopes are
	// authenticated in a crypto.VerifyPool before they reach the
	// worker-thread (per-inbox order is preserved), so the worker only
	// ever sees authenticated messages; 0 verifies inline on the
	// worker-thread, the paper's baseline assignment (Section 4.3).
	VerifyThreads int
	// VerifyBatch is the verify pool's batch window: each pool worker
	// claims up to this many pending submissions per wakeup and checks
	// them with one batched call (crypto.BatchVerifier), amortizing the
	// dispatch cost per signature under load. 0 means
	// crypto.DefaultVerifyBatch; 1 verifies strictly per signature.
	// Only meaningful with VerifyThreads > 0.
	VerifyBatch int
	// PooledEncode controls the pooled outbound encode path (Section 4.8
	// buffer-pool management on the send side): broadcast and sendTo
	// marshal bodies into arena-backed buffers from a per-replica byte
	// pool, reference-counted per destination envelope and recycled when
	// the transport writer (or in-process receiver) retires the last one.
	// 0 (the default) enables it; negative disables it, making every send
	// build a fresh body buffer — the pre-pooling behavior, kept as the
	// allocs benchmark's baseline.
	PooledEncode int
	// ReplicaInboxes is the number of input-threads for replica traffic
	// (default 2).
	ReplicaInboxes int
	// CheckpointInterval is Δ in batches; the paper checkpoints once per
	// 10K transactions, i.e. every 100 batches of 100 (Section 5.1).
	CheckpointInterval uint64
	// WatermarkWindow bounds out-of-order pipelining depth.
	WatermarkWindow uint64
	// LedgerMode selects block linkage (default CommitCertificate,
	// Section 4.6).
	LedgerMode ledger.Mode
	// Store is the record table; nil means a fresh in-memory store.
	Store store.Store
	// Directory provides key material; Endpoint attaches the network.
	Directory *crypto.Directory
	Endpoint  transport.Endpoint
	// VerifyClientSigs makes batch-threads verify client request
	// signatures before batching (on by default at the primary via
	// NewDefault; forged requests are rejected).
	VerifyClientSigs bool
	// DisableOutOfOrder serializes consensus instances: the primary
	// proposes batch k+1 only after batch k executed. It exists as the
	// ablation baseline for Section 4.5.
	DisableOutOfOrder bool
	// ViewTimeout arms a progress watchdog that triggers a view change
	// when client work stalls; zero disables it.
	ViewTimeout time.Duration
	// Bootstrap seeds a restarting replica mid-stream instead of booting
	// from genesis; nil is the fresh-boot default. PBFT only: Zyzzyva's
	// speculative history chain cannot be joined mid-stream.
	Bootstrap *Bootstrap
}

// Bootstrap is the state a recovering replica resumes from: a snapshot of
// a live peer's retained ledger tail (the stable checkpoint licenses
// everything before it), the cluster's current view, and the per-client
// dedup positions at the snapshot head. The replica's durable store
// carries the record state itself — reopened shard logs replay to the
// state the snapshot head attests — so Bootstrap carries only the
// consensus-side state that lives in memory.
type Bootstrap struct {
	// Blocks is the peer's retained chain tail (ledger.Blocks()); the
	// last block anchors the engine's watermarks and the execution
	// cursor.
	Blocks []types.Block
	// View is the cluster's current view; the engine boots into it so the
	// recovering replica accepts current-view traffic immediately.
	View types.View
	// LastExec is the per-client dedup snapshot at the peer
	// (Replica.DedupSnapshot()); without it a recovering replica would
	// re-execute a retransmitted request its peers already skipped,
	// diverging store state from the ledger.
	LastExec map[types.ClientID]uint64
}

func (c *Config) fill() error {
	if c.N < 4 {
		return fmt.Errorf("replica: need n ≥ 4, got %d", c.N)
	}
	if int(c.ID) >= c.N {
		return fmt.Errorf("replica: id %d out of range for n=%d", c.ID, c.N)
	}
	switch c.Protocol {
	case PBFT, Zyzzyva:
	default:
		return fmt.Errorf("replica: invalid protocol %d", c.Protocol)
	}
	if c.ExecuteThreads < 0 {
		return fmt.Errorf("replica: negative ExecuteThreads (0 folds execution into the worker, 1 is the serial execute-thread, E > 1 runs E write-set-partitioned execution shards)")
	}
	if c.BatchThreads < 0 {
		return fmt.Errorf("replica: negative BatchThreads")
	}
	if c.ExecPipelineDepth < 0 {
		return fmt.Errorf("replica: negative ExecPipelineDepth (1 is the strict per-batch barrier, P > 1 pipelines up to P batches across the execution shards)")
	}
	if c.ExecPipelineDepth == 0 {
		c.ExecPipelineDepth = 1
	}
	if c.VerifyThreads < 0 {
		return fmt.Errorf("replica: negative VerifyThreads")
	}
	if c.VerifyBatch < 0 {
		c.VerifyBatch = 1 // negative = explicitly disabled, per-signature
	}
	if c.WorkerThreads < 0 {
		return fmt.Errorf("replica: negative WorkerThreads")
	}
	if c.WorkerThreads == 0 {
		c.WorkerThreads = 1
	}
	if c.BatchSize < 1 {
		c.BatchSize = 100
	}
	if c.BatchLinger <= 0 {
		c.BatchLinger = 2 * time.Millisecond
	}
	if c.OutputThreads < 1 {
		c.OutputThreads = 2
	}
	if c.ReplicaInboxes < 1 {
		c.ReplicaInboxes = 2
	}
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = 100
	}
	if c.WatermarkWindow == 0 {
		c.WatermarkWindow = 4096
	}
	if c.LedgerMode == 0 {
		c.LedgerMode = ledger.CommitCertificate
	}
	if c.Directory == nil {
		return fmt.Errorf("replica: Directory is required")
	}
	if c.Endpoint == nil {
		return fmt.Errorf("replica: Endpoint is required")
	}
	return nil
}

// Stage identifies a pipeline stage for busy-time accounting.
type Stage int

// Pipeline stages (Figure 6).
const (
	StageInput Stage = iota
	StageBatch
	StageWorker
	StageExecute
	StageCheckpoint
	StageOutput
	stageCount
)

// String implements fmt.Stringer.
func (s Stage) String() string {
	switch s {
	case StageInput:
		return "input"
	case StageBatch:
		return "batch"
	case StageWorker:
		return "worker"
	case StageExecute:
		return "execute"
	case StageCheckpoint:
		return "checkpoint"
	case StageOutput:
		return "output"
	default:
		return "unknown"
	}
}

// Stats is a snapshot of replica counters. Taking a snapshot is lock-free
// end to end — every counter (including the engine's) is an atomic — so
// observability never contends with consensus.
type Stats struct {
	TxnsExecuted    uint64
	BatchesExecuted uint64
	BatchesProposed uint64
	// ReadsExecuted counts read operations carried through consensus and
	// answered at execution (the ordered read path). LocalReads counts
	// client ReadRequests answered from the last-executed state on the
	// dedicated read lane, without consuming a sequence number — the
	// consensus-bypassing read path. LocalReadDrops counts ReadRequests
	// discarded because the read lane's queue was full (the client times
	// out and rotates to another replica); it is the local read path's
	// overload signal.
	ReadsExecuted  uint64
	LocalReads     uint64
	LocalReadDrops uint64
	MsgsIn         uint64
	MsgsOut        uint64
	// AuthFailures counts envelopes whose authenticator failed
	// verification and client requests with bad signatures — the real
	// "someone is forging traffic" signal.
	AuthFailures uint64
	// DecodeFailures counts malformed messages that failed body decoding
	// or arrived with an unexpected type. Kept separate from
	// AuthFailures so garbage traffic cannot hide real auth attacks.
	DecodeFailures uint64
	// NetDrops is the endpoint's count of inbound envelopes discarded
	// because their inbox was full — the previously silent overload
	// signal.
	NetDrops     uint64
	Checkpoints  uint64
	View         types.View
	LedgerHeight uint64
	// BusyNS is cumulative busy time per stage, the runtime analogue of
	// the Figure 9 saturation measurement. The worker entry aggregates
	// all lanes; WorkerLaneBusyNS has the per-lane split.
	BusyNS [stageCount]uint64
	// WorkerLanes is the number of worker lanes actually running (1 for
	// engines that require serialized stepping, regardless of the
	// configured WorkerThreads).
	WorkerLanes int
	// WorkerLaneBusyNS is cumulative busy time per worker lane; with
	// WorkerThreads > 1 it shows how consensus stepping spreads across
	// lanes (the Figure 9 saturation measurement, per lane).
	WorkerLaneBusyNS []uint64
	// ExecShards is the number of execution shard workers actually
	// running (0 when execution is serial, i.e. ExecuteThreads ≤ 1).
	ExecShards int
	// ExecShardBusyNS is cumulative store-apply busy time per execution
	// shard, mirroring WorkerLaneBusyNS: with ExecuteThreads > 1 it shows
	// how the write-set partitions spread across shards. The execute
	// entry of BusyNS remains the coordinator's wall time per batch
	// (partitioning plus the barrier wait), so shard busy vs coordinator
	// wall time is the parallelism evidence on few-core machines.
	ExecShardBusyNS []uint64
	// ExecPipelineDepth is the effective cross-batch pipelining depth (1 =
	// the strict per-batch barrier).
	ExecPipelineDepth int
	// StoreFsyncs and StoreFsyncStallNS surface the durable store's
	// group-commit accounting (zero for stores without fsync, e.g.
	// MemStore): how many fsyncs the store issued and how long writers
	// cumulatively stalled waiting for one. The diskpipe bench reads these
	// to show what group commit buys over per-op fsync.
	StoreFsyncs       uint64
	StoreFsyncStallNS uint64
	// StoreWriteFailures counts execute-stage writes the store rejected
	// (full disk, failed fsync, closed store). Any nonzero value means
	// store state may have diverged from the ledger — the durable-store
	// analogue of the evidence counter.
	StoreWriteFailures uint64
	// StoreCompactions, StoreCompactFailures, StoreCompactReclaimedBytes,
	// and StoreCompactStallNS surface the durable store's log-compaction
	// accounting (zero for stores without logs, e.g. MemStore): completed
	// and failed log rewrites, the log bytes those rewrites dropped, and
	// how long writers stalled behind a rewrite. Compaction is triggered
	// on the replica's stable-checkpoint path (the §4.7 garbage-collection
	// moment) behind the store's garbage-ratio threshold.
	StoreCompactions           uint64
	StoreCompactFailures       uint64
	StoreCompactReclaimedBytes uint64
	StoreCompactStallNS        uint64
	// EncodePoolHits and EncodePoolMisses are the outbound encode pool's
	// reuse counters (both zero when PooledEncode is disabled): a miss is
	// a send that had to allocate its body buffer. VerifyBatched counts
	// signatures accepted via the verify pool's batched path; against
	// MsgsIn it shows how often verification wakeups were amortized.
	EncodePoolHits   uint64
	EncodePoolMisses uint64
	VerifyBatched    uint64
	// Queue-depth gauges: a live snapshot of how full each bounded
	// pipeline queue is, taken when Stats is called. NetDrops only shows
	// saturation after the damage; these show it while it builds, which
	// is what the gateway's admission controller steers on. Input is the
	// fullest endpoint inbox, Work the fullest worker lane, Out the
	// fullest output queue; ExecBacklog counts batches decided by
	// consensus but not yet retired (bounded by the watermark window,
	// reported as ExecWindow).
	InputQueueDepth int
	InputQueueCap   int
	BatchQueueDepth int
	BatchQueueCap   int
	WorkQueueDepth  int
	WorkQueueCap    int
	ExecBacklog     int
	ExecWindow      int
	OutQueueDepth   int
	OutQueueCap     int
	// BusyGauge folds the gauges above into the 0 (idle) .. 255 (a queue
	// is full) saturation scalar replicas piggyback on client responses
	// (ClientResponse.Busy / SpecResponse.Busy): the fill fraction of the
	// fullest queue, scaled. Stats recomputes it live.
	BusyGauge uint8
	// Evidence counts byzantine-behaviour observations (e.g. a primary
	// equivocating two digests for one sequence) and pipeline invariant
	// violations. Any nonzero value on an honest replica means a peer
	// misbehaved in a provable way.
	Evidence uint64
}

// workItem is the union flowing into the worker lanes: either a decoded
// peer message or (in 0B mode) a client request to batch. The input/verify
// stage decodes the envelope body before routing — decoding is what makes
// sequence-based lane routing possible, and it takes that cost off the
// worker lanes — so msg is always non-nil when env is. verified records
// that the envelope's authenticator already passed the verify stage, so
// the worker must not spend time re-checking it.
type workItem struct {
	env      *types.Envelope
	msg      types.Message
	req      *types.ClientRequest
	verified bool
}

// verifiedItem pairs an envelope with its in-flight verification; the
// per-inbox forwarder awaits results in submission order, preserving
// inbox FIFO while verification itself runs in parallel. The pending
// handle is pooled — Await recycles it — so the verify stage allocates
// nothing per message in steady state.
type verifiedItem struct {
	env *types.Envelope
	res *crypto.Pending
}

// execItem carries one committed batch into the execution stage.
type execItem struct {
	act consensus.Execute
}

// shardOp is one typed operation routed to an execution shard, in batch
// order. A write carries the value to apply; a read carries the slot in
// the batch's read-result buffer where its result lands. A scan carries
// its range bounds and a pointer to this shard's fragment slot: the
// worker fills it with the sorted rows of its own key partition inside
// [key, end], and the coordinator merges the fragments at retirement.
type shardOp struct {
	key   uint64
	value []byte
	slot  int
	read  bool
	scan  bool
	end   uint64
	limit uint32
	frag  *[]types.ScanRow
}

// readRange is one request's contiguous span of the batch's read-result
// buffer; slots are assigned in (request, transaction, op) order, so each
// request's reads are adjacent.
type readRange struct {
	start, n int
}

// pendingScan is one scan op of an in-flight batch: the coordinator fans
// the scan to every shard worker (each computes the sorted fragment of
// its own key partition) and merges the disjoint fragments into the
// batch's read-result slot at retirement. limit is the row cap after the
// merge; capping each fragment at limit too is lossless — a row a shard
// drops has ≥ limit smaller same-shard rows ahead of it, so it cannot be
// among the lowest limit rows overall.
type pendingScan struct {
	slot  int
	limit uint32
	frags [][]types.ScanRow
}

// execShardJob is one shard's partition of a committed batch: the writes
// and reads touching the shard's keys, in batch order. The ops slice
// belongs to the batch's partition-buffer set, which is only recycled
// (via partsFree) after the batch's barrier completed; reads is the
// batch's shared read-result buffer — each shard writes only the slots
// its own partition carries, so workers never race on an element.
// done.Done is the worker's last touch of the job, so the buffers are
// never rebuilt while a worker still reads them.
type execShardJob struct {
	ops   []shardOp
	reads []types.ReadResult
	done  *sync.WaitGroup
}

// inflightExec is one committed batch mid-pipeline: its typed partitions
// are fanned out to the shard workers, its barrier (done) not yet waited.
// The coordinator retires in-flight batches strictly in sequence order.
type inflightExec struct {
	act      consensus.Execute
	txnCount uint32
	done     sync.WaitGroup
	parts    [][]shardOp // owned partition buffers; recycled at retire
	// reads is the slot-indexed read-result buffer the shard workers (or
	// the serial path) fill during execution; readRanges maps each request
	// in the batch to its span. Both stay nil for write-only batches, so
	// the write path allocates nothing new. scans lists the batch's scan
	// slots, filled by the coordinator's fragment merge at retirement.
	reads      []types.ReadResult
	readRanges []readRange
	scans      []pendingScan
}

// Replica is a runnable pipelined replica.
type Replica struct {
	cfg Config
	// engine is safe for concurrent stepping: either a natively
	// concurrent engine (consensus.ConcurrentStepper, e.g. the
	// lock-striped PBFT engine) or a single-threaded engine behind
	// consensus.Serialize. The replica never takes a lock of its own
	// around engine calls.
	engine consensus.Engine
	// lanes is the number of worker lanes actually running: WorkerThreads
	// for concurrent-steppable engines, 1 otherwise.
	lanes int
	auth  crypto.Authenticator

	ledger *ledger.Ledger
	store  store.Store
	// scanner is the store's ordered view (nil when the store does not
	// implement store.Scanner); scan ops against a scan-less store return
	// empty rows and count a store failure.
	scanner store.Scanner

	// Execution sharding (ExecuteThreads > 1): execShards workers each
	// own one hash partition of the key space; the coordinating
	// execute-thread fans a batch's writes out over shardQs and retires
	// batches strictly in order. execDepth is the cross-batch pipelining
	// depth (1 = strict per-batch barrier); partsFree recycles execDepth
	// sets of coordinator-owned partition buffers, so a batch's buffers
	// are only reused after its barrier completed. execBatch caches
	// whether the store supports the batched apply path.
	execShards int
	execDepth  int
	shardQs    []chan execShardJob
	shardWg    sync.WaitGroup
	partsFree  chan [][]shardOp
	execBatch  store.Batcher

	// Store compaction (nil for stores without logs, e.g. MemStore): a
	// stable checkpoint signals compactC (capacity one, non-blocking) and
	// a single compactor goroutine runs the store's threshold check, so
	// log rewrites never run on a consensus lane and never pile up.
	compactor store.Compactor
	compactC  chan struct{}
	compactWg sync.WaitGroup

	batchQ *queue.MPMC[*types.ClientRequest]
	// workQs are the worker lanes. Sequence-carrying consensus messages
	// go to lane seq mod lanes; control traffic stays on lane 0.
	workQs []chan workItem
	ckptQ  chan workItem
	outQs  []chan *types.Envelope
	execIn *queue.InOrder[execItem]

	// Output shutdown guard: enqueueOut holds outMu in read mode while
	// touching outQs; Stop takes it in write mode to mark the queues
	// closed before closing them, so late producers (e.g. the watchdog)
	// drop their envelopes instead of panicking on a closed channel.
	outMu     sync.RWMutex
	outClosed bool

	// progressC wakes batch-threads parked on a full watermark window (or
	// the DisableOutOfOrder gate); it is signalled on every executed
	// batch and stable checkpoint. Capacity one: a lost signal only
	// delays a waiter until its fallback timer fires.
	progressC chan struct{}

	// Read lane: the input stage enqueues authenticated, decoded local
	// ReadRequests here and dedicated read workers answer them, so store
	// reads never head-of-line block the client inbox. A full queue drops
	// the request (localReadDrops) instead of backpressuring consensus
	// traffic.
	readQ  chan *types.ReadRequest
	readWg sync.WaitGroup

	// Verify stage (nil / empty when VerifyThreads == 0).
	verifyPool *crypto.VerifyPool
	verifyQs   []chan verifiedItem
	verifyWg   sync.WaitGroup

	reqPool *pool.Pool[types.ClientRequest]

	// encBufs backs the pooled outbound encode path (nil when
	// Config.PooledEncode is negative): broadcast/sendTo bodies are
	// marshaled into arena-backed buffers recycled here once the last
	// destination envelope retires. encHint tracks the largest body seen,
	// so marshals borrow from the right capacity class up front instead of
	// growing out of an undersized buffer on every large batch.
	encBufs *pool.BytePool
	encHint atomic.Int64

	// Execution-side dedup: last executed client sequence per client.
	// Only the execute coordinator writes it; dedupMu exists so
	// DedupSnapshot (the restart-bootstrap export) can read it safely.
	dedupMu  sync.Mutex
	lastExec map[types.ClientID]uint64

	// Watchdog state.
	pendingHint  atomic.Bool
	lastProgress atomic.Int64 // unix nanos

	// notPrimary caches the inverse primary role for the lock-free input
	// path; refreshed on ViewChanged actions.
	notPrimary atomic.Bool

	// evidence counts byzantine-behaviour observations and pipeline
	// invariant violations.
	evidence atomic.Uint64

	// Inline (0E) execution reorder state, guarded by inlineMu.
	inlineMu      sync.Mutex
	inlinePending map[uint64]consensus.Execute
	inlineNext    uint64

	// inflight tracks unexecuted proposed batches for the
	// DisableOutOfOrder ablation.
	inflight atomic.Int64

	// execPending counts batches decided by consensus but not yet retired
	// (ledger appended, clients answered) — the execute stage's backlog
	// gauge. execWindow is the watermark window it is read against: the
	// protocol-level bound on in-flight sequence numbers.
	execPending atomic.Int64
	execWindow  int

	stop     chan struct{}
	stopOnce sync.Once
	inputWg  sync.WaitGroup
	stage1Wg sync.WaitGroup // batch, worker, checkpoint
	execWg   sync.WaitGroup
	outWg    sync.WaitGroup
	watchWg  sync.WaitGroup

	txnsExecuted    atomic.Uint64
	batchesExecuted atomic.Uint64
	readsExecuted   atomic.Uint64
	localReads      atomic.Uint64
	localReadDrops  atomic.Uint64
	// lastRetired is the highest sequence number whose batch has fully
	// retired (ledger appended, store applied); locally served reads are
	// stamped with it as a per-key freshness lower bound (reads run
	// concurrently with later batches applying, so it is not a snapshot
	// position).
	lastRetired    atomic.Uint64
	msgsIn         atomic.Uint64
	msgsOut        atomic.Uint64
	authFailures   atomic.Uint64
	decodeFailures atomic.Uint64
	storeFailures  atomic.Uint64
	busyNS         [stageCount]atomic.Uint64
	laneBusyNS     []atomic.Uint64
	shardBusyNS    []atomic.Uint64
}

// New creates a replica; call Start to launch the pipeline.
func New(cfg Config) (*Replica, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	// A bootstrap anchors the engine and the execution cursor at the
	// snapshot head: everything at or below startSeq is already executed
	// (the recovering replica's reopened store attests it), everything
	// above arrives through normal consensus in startView.
	var startSeq types.SeqNum
	var startView types.View
	if cfg.Bootstrap != nil {
		if cfg.Protocol != PBFT {
			return nil, fmt.Errorf("replica: bootstrap restart is only supported for PBFT, not %v", cfg.Protocol)
		}
		if len(cfg.Bootstrap.Blocks) == 0 {
			return nil, errors.New("replica: bootstrap requires a non-empty block snapshot")
		}
		head := cfg.Bootstrap.Blocks[len(cfg.Bootstrap.Blocks)-1]
		startSeq = head.Seq
		startView = cfg.Bootstrap.View
	}
	var engine consensus.Engine
	var err error
	switch cfg.Protocol {
	case PBFT:
		engine, err = pbft.New(pbft.Config{
			ID:                 cfg.ID,
			N:                  cfg.N,
			CheckpointInterval: cfg.CheckpointInterval,
			WatermarkWindow:    cfg.WatermarkWindow,
			StartView:          startView,
			StartSeq:           startSeq,
		})
	case Zyzzyva:
		engine, err = zyzzyva.New(zyzzyva.Config{
			ID:                  cfg.ID,
			N:                   cfg.N,
			CheckpointInterval:  cfg.CheckpointInterval,
			MaxSpeculationDepth: cfg.WatermarkWindow,
		})
	}
	if err != nil {
		return nil, err
	}
	if cfg.Protocol == Zyzzyva && cfg.LedgerMode == ledger.CommitCertificate {
		// Speculative execution has no commit certificate at block-creation
		// time; Zyzzyva chains blocks by hash.
		cfg.LedgerMode = ledger.HashChain
	}
	st := cfg.Store
	if st == nil {
		st = store.NewMemStore(1 << 16)
	}
	// Engines that cannot step concurrently (no ConcurrentStepper) are
	// serialized and driven by a single lane regardless of WorkerThreads.
	lanes := cfg.WorkerThreads
	if _, ok := engine.(consensus.ConcurrentStepper); !ok {
		lanes = 1
	}
	var ldg *ledger.Ledger
	if cfg.Bootstrap != nil {
		ldg, err = ledger.NewFromBlocks(cfg.LedgerMode, cfg.Bootstrap.Blocks, consensus.Quorum2f1(cfg.N))
		if err != nil {
			return nil, err
		}
	} else {
		genesis := crypto.Hash256([]byte(fmt.Sprintf("genesis-primary-%d", consensus.PrimaryOf(0, cfg.N))))
		ldg = ledger.New(cfg.LedgerMode, genesis, consensus.Quorum2f1(cfg.N))
	}
	r := &Replica{
		cfg:        cfg,
		engine:     consensus.Serialize(engine),
		lanes:      lanes,
		auth:       cfg.Directory.NodeAuth(types.ReplicaNode(cfg.ID)),
		ledger:     ldg,
		store:      st,
		batchQ:     queue.NewMPMC[*types.ClientRequest](1 << 14),
		ckptQ:      make(chan workItem, 1<<10),
		execIn:     queue.NewInOrder[execItem](int(cfg.WatermarkWindow)*2, uint64(startSeq)+1),
		execWindow: int(cfg.WatermarkWindow),
		lastExec:   make(map[types.ClientID]uint64),
		stop:       make(chan struct{}),
		progressC:  make(chan struct{}, 1),
		readQ:      make(chan *types.ReadRequest, 1<<10),
		reqPool: pool.New[types.ClientRequest](nil, func(cr *types.ClientRequest) {
			*cr = types.ClientRequest{}
		}, 1024, 1<<16),
	}
	if cfg.PooledEncode >= 0 {
		r.encBufs = new(pool.BytePool)
	}
	r.workQs = make([]chan workItem, lanes)
	for i := range r.workQs {
		r.workQs[i] = make(chan workItem, 1<<13)
	}
	r.laneBusyNS = make([]atomic.Uint64, lanes)
	r.execDepth = 1
	if cfg.ExecuteThreads > 1 {
		r.execShards = cfg.ExecuteThreads
		// Pipelining depth only exists for the sharded execute stage: with
		// a serial executor there are no shard workers to overlap.
		r.execDepth = cfg.ExecPipelineDepth
		// A shard can hold one outstanding job per in-flight batch; sizing
		// the queue to the depth keeps the coordinator from blocking on
		// fan-out (blocking would only be backpressure, not a bug).
		r.shardQs = make([]chan execShardJob, r.execShards)
		for i := range r.shardQs {
			r.shardQs[i] = make(chan execShardJob, r.execDepth)
		}
		r.partsFree = make(chan [][]shardOp, r.execDepth)
		for i := 0; i < r.execDepth; i++ {
			r.partsFree <- make([][]shardOp, r.execShards)
		}
		r.shardBusyNS = make([]atomic.Uint64, r.execShards)
		if b, ok := st.(store.Batcher); ok {
			r.execBatch = b
		}
	}
	if comp, ok := st.(store.Compactor); ok {
		r.compactor = comp
		r.compactC = make(chan struct{}, 1)
	}
	if sc, ok := st.(store.Scanner); ok {
		r.scanner = sc
	}
	r.inlinePending = make(map[uint64]consensus.Execute)
	r.inlineNext = uint64(startSeq) + 1
	if cfg.Bootstrap != nil {
		r.lastRetired.Store(uint64(startSeq))
		for c, seq := range cfg.Bootstrap.LastExec {
			r.lastExec[c] = seq
		}
	}
	r.outQs = make([]chan *types.Envelope, cfg.OutputThreads)
	for i := range r.outQs {
		r.outQs[i] = make(chan *types.Envelope, 1<<13)
	}
	r.notPrimary.Store(!engine.IsPrimary())
	r.lastProgress.Store(time.Now().UnixNano())
	return r, nil
}

// Ledger exposes the replica's blockchain for inspection.
func (r *Replica) Ledger() *ledger.Ledger { return r.ledger }

// Store exposes the replica's record table.
func (r *Replica) Store() store.Store { return r.store }

// LastRetired returns the highest sequence number whose batch has fully
// executed and retired — the store reflects exactly the batches up to
// this point, while the ledger's height tracks commitment, which
// execution trails.
func (r *Replica) LastRetired() types.SeqNum { return types.SeqNum(r.lastRetired.Load()) }

// ID returns the replica identifier.
func (r *Replica) ID() types.ReplicaID { return r.cfg.ID }

// IsPrimary reports whether this replica currently leads. It is
// lock-free (the engine's observers are atomic-backed).
func (r *Replica) IsPrimary() bool {
	return r.engine.IsPrimary()
}

// WorkerLanes returns the number of worker lanes actually running.
func (r *Replica) WorkerLanes() int { return r.lanes }

// ProposalHead returns the highest sequence number the consensus engine
// has proposed or adopted, or 0 if the engine does not expose it.
func (r *Replica) ProposalHead() types.SeqNum {
	if ph, ok := r.engine.(consensus.ProposalHeader); ok {
		return ph.LastProposed()
	}
	return 0
}

// Stats returns a snapshot of the replica's counters. It takes no locks —
// engine observers and every replica counter are atomics — so polling
// stats never contends with consensus.
func (r *Replica) Stats() Stats {
	es := r.engine.Stats()
	s := Stats{
		TxnsExecuted:    r.txnsExecuted.Load(),
		BatchesExecuted: r.batchesExecuted.Load(),
		ReadsExecuted:   r.readsExecuted.Load(),
		LocalReads:      r.localReads.Load(),
		LocalReadDrops:  r.localReadDrops.Load(),
		BatchesProposed: es.Proposed,
		MsgsIn:          r.msgsIn.Load(),
		MsgsOut:         r.msgsOut.Load(),
		AuthFailures:    r.authFailures.Load(),
		DecodeFailures:  r.decodeFailures.Load(),
		NetDrops:        r.cfg.Endpoint.Drops(),
		Checkpoints:     es.Checkpoints,
		View:            r.engine.View(),
		LedgerHeight:    r.ledger.Height(),
		WorkerLanes:     r.lanes,
	}
	for i := range s.BusyNS {
		s.BusyNS[i] = r.busyNS[i].Load()
	}
	s.WorkerLaneBusyNS = make([]uint64, r.lanes)
	for i := range s.WorkerLaneBusyNS {
		s.WorkerLaneBusyNS[i] = r.laneBusyNS[i].Load()
	}
	s.ExecShards = r.execShards
	s.ExecShardBusyNS = make([]uint64, r.execShards)
	for i := range s.ExecShardBusyNS {
		s.ExecShardBusyNS[i] = r.shardBusyNS[i].Load()
	}
	s.ExecPipelineDepth = r.execDepth
	s.StoreWriteFailures = r.storeFailures.Load()
	if ss, ok := r.store.(store.SyncStatser); ok {
		sy := ss.SyncStats()
		s.StoreFsyncs = sy.Fsyncs
		s.StoreFsyncStallNS = sy.FsyncStallNS
	}
	if r.compactor != nil {
		cs := r.compactor.CompactStats()
		s.StoreCompactions = cs.Compactions
		s.StoreCompactFailures = cs.Failures
		s.StoreCompactReclaimedBytes = cs.ReclaimedBytes
		s.StoreCompactStallNS = cs.StallNS
	}
	if r.encBufs != nil {
		s.EncodePoolHits, s.EncodePoolMisses = r.encBufs.Stats()
	}
	if r.verifyPool != nil {
		s.VerifyBatched = r.verifyPool.BatchedVerifies()
	}
	s.Evidence = r.evidence.Load()
	r.queueGauges(&s)
	return s
}

// queueGauges snapshots every bounded pipeline queue into the stats
// record. Channel len/cap reads and the ring's atomic cursors are
// lock-free, so this is safe from any goroutine while the pipeline runs.
func (r *Replica) queueGauges(s *Stats) {
	ep := r.cfg.Endpoint
	for i := 0; i < ep.Inboxes(); i++ {
		ch := ep.Inbox(i)
		if n := len(ch); n > s.InputQueueDepth {
			s.InputQueueDepth = n
		}
		if c := cap(ch); c > s.InputQueueCap {
			s.InputQueueCap = c
		}
	}
	s.BatchQueueDepth = r.batchQ.Len()
	s.BatchQueueCap = r.batchQ.Cap()
	for i := range r.workQs {
		if n := len(r.workQs[i]); n > s.WorkQueueDepth {
			s.WorkQueueDepth = n
		}
		s.WorkQueueCap = cap(r.workQs[i])
	}
	s.ExecBacklog = int(r.execPending.Load())
	s.ExecWindow = r.execWindow
	for i := range r.outQs {
		if n := len(r.outQs[i]); n > s.OutQueueDepth {
			s.OutQueueDepth = n
		}
		s.OutQueueCap = cap(r.outQs[i])
	}
	s.BusyGauge = r.busyGauge()
}

// busyGauge compresses the pipeline's queue occupancy into the 0..255
// saturation scalar piggybacked on every client response: the fill
// fraction of the fullest bounded queue, scaled. 0 is idle; 255 means
// some queue is full and the next arrival on it would be dropped. It is
// recomputed once per retired batch (and on Stats), never per
// transaction, and reads only channel lengths and atomics.
func (r *Replica) busyGauge() uint8 {
	g := 0
	sat := func(n, c int) {
		if c <= 0 {
			return
		}
		if n > c {
			n = c
		}
		if s := n * 255 / c; s > g {
			g = s
		}
	}
	ep := r.cfg.Endpoint
	for i := 0; i < ep.Inboxes(); i++ {
		ch := ep.Inbox(i)
		sat(len(ch), cap(ch))
	}
	sat(r.batchQ.Len(), r.batchQ.Cap())
	for i := range r.workQs {
		sat(len(r.workQs[i]), cap(r.workQs[i]))
	}
	sat(int(r.execPending.Load()), r.execWindow)
	for i := range r.outQs {
		sat(len(r.outQs[i]), cap(r.outQs[i]))
	}
	return uint8(g)
}

// DedupSnapshot copies the execution-side dedup table: the last executed
// client sequence per client. A restarting replica seeds Bootstrap.LastExec
// from a live peer's snapshot so a retransmitted, already-acknowledged
// request is skipped on both — re-executing it would diverge store state
// from the ledger.
func (r *Replica) DedupSnapshot() map[types.ClientID]uint64 {
	r.dedupMu.Lock()
	defer r.dedupMu.Unlock()
	out := make(map[types.ClientID]uint64, len(r.lastExec))
	for c, seq := range r.lastExec {
		out[c] = seq
	}
	return out
}

func (r *Replica) addBusy(stage Stage, d time.Duration) {
	if d > 0 {
		r.busyNS[stage].Add(uint64(d))
	}
}

// addLaneBusy attributes worker time both to the aggregate worker stage
// and to the lane that spent it.
func (r *Replica) addLaneBusy(lane int, d time.Duration) {
	if d > 0 {
		r.busyNS[StageWorker].Add(uint64(d))
		r.laneBusyNS[lane].Add(uint64(d))
	}
}

// Start launches the pipeline goroutines.
func (r *Replica) Start() {
	// Verify stage: a shared verification pool plus one order-preserving
	// forwarder per inbox. Each input-thread submits envelopes to the pool
	// and hands the pending results to its forwarder, which awaits them in
	// submission order and routes only authenticated envelopes onward.
	nIn := r.cfg.Endpoint.Inboxes()
	if r.cfg.VerifyThreads > 0 {
		r.verifyPool = crypto.NewVerifyPoolBatch(r.auth, r.cfg.VerifyThreads, r.cfg.VerifyThreads*64, r.cfg.VerifyBatch)
		r.verifyQs = make([]chan verifiedItem, nIn)
		for i := range r.verifyQs {
			r.verifyQs[i] = make(chan verifiedItem, 256)
			r.verifyWg.Add(1)
			go r.verifyForwardLoop(r.verifyQs[i])
		}
	}
	pend := func(i int) chan verifiedItem {
		if r.verifyQs == nil {
			return nil
		}
		return r.verifyQs[i]
	}

	// Input: client traffic on inbox 0, replica traffic on the rest.
	r.inputWg.Add(1)
	go r.inputClientLoop(r.cfg.Endpoint.Inbox(0), pend(0))
	for i := 1; i < nIn; i++ {
		r.inputWg.Add(1)
		go r.inputReplicaLoop(r.cfg.Endpoint.Inbox(i), pend(i))
	}

	// Read lane: two workers answering locally served reads keep one slow
	// multi-key (disk-bound) read from serializing the whole local read
	// path while staying far from oversubscribing the machine.
	for i := 0; i < 2; i++ {
		r.readWg.Add(1)
		go r.readLoop()
	}

	for i := 0; i < r.cfg.BatchThreads; i++ {
		r.stage1Wg.Add(1)
		go r.batchLoop()
	}
	// Worker lanes: lane 0 carries control traffic (and 0B batch
	// assembly); the rest step sequence-routed consensus messages in
	// parallel on the lock-striped engine.
	r.stage1Wg.Add(1)
	go r.workerLoop()
	for lane := 1; lane < r.lanes; lane++ {
		r.stage1Wg.Add(1)
		go r.laneLoop(lane)
	}
	r.stage1Wg.Add(1)
	go r.checkpointLoop()

	if r.cfg.ExecuteThreads > 0 {
		r.execWg.Add(1)
		go r.executeLoop()
	}
	for shard := 0; shard < r.execShards; shard++ {
		r.shardWg.Add(1)
		go r.execShardLoop(shard)
	}

	for i := range r.outQs {
		r.outWg.Add(1)
		go r.outputLoop(r.outQs[i])
	}

	if r.compactor != nil {
		r.compactWg.Add(1)
		go r.compactLoop()
	}

	if r.cfg.ViewTimeout > 0 {
		r.watchWg.Add(1)
		go r.watchdogLoop()
	}
}

// Stop shuts the pipeline down gracefully and waits for every goroutine.
// The replica's endpoint is closed as part of the shutdown.
func (r *Replica) Stop() {
	r.stopOnce.Do(func() {
		close(r.stop)
		r.cfg.Endpoint.Close()
		r.inputWg.Wait()

		// The input loops are the read lane's only producers; drain and
		// stop it while the output stage is still up so queued replies
		// still reach their clients.
		close(r.readQ)
		r.readWg.Wait()

		// Input loops closed their verify queues on exit; wait for the
		// forwarders to drain them before the queues they feed close.
		r.verifyWg.Wait()

		r.batchQ.Close()
		for _, q := range r.workQs {
			close(q)
		}
		close(r.ckptQ)
		r.stage1Wg.Wait()

		// Batch-threads fan client-signature checks through the verify
		// pool, so it must outlive stage 1; close it only once they exit.
		if r.verifyPool != nil {
			r.verifyPool.Close()
		}

		r.execIn.Close()
		r.execWg.Wait()

		// The coordinator is gone, so no shard job can be in flight.
		for _, q := range r.shardQs {
			close(q)
		}
		r.shardWg.Wait()

		// Mark the output queues closed before closing them: any producer
		// still in flight (the watchdog, a late retransmission) observes
		// outClosed under the read lock and drops its envelope instead of
		// sending on a closed channel. The stop channel is already closed,
		// so blocked senders have woken by the time the write lock is
		// granted.
		r.outMu.Lock()
		r.outClosed = true
		r.outMu.Unlock()
		for _, q := range r.outQs {
			close(q)
		}
		r.outWg.Wait()
		r.compactWg.Wait()
		r.watchWg.Wait()
	})
}

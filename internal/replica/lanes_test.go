package replica

import (
	"testing"

	"resilientdb/internal/types"
)

func TestWorkerThreadsValidation(t *testing.T) {
	cfg := validConfig(t)
	cfg.WorkerThreads = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("negative WorkerThreads accepted")
	}
}

func TestWorkerThreadsDefaultSingleLane(t *testing.T) {
	r, err := New(validConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.WorkerLanes() != 1 {
		t.Fatalf("default lanes = %d, want 1", r.WorkerLanes())
	}
}

func TestPBFTGetsRequestedLanes(t *testing.T) {
	cfg := validConfig(t)
	cfg.WorkerThreads = 4
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.WorkerLanes() != 4 {
		t.Fatalf("lanes = %d, want 4", r.WorkerLanes())
	}
	if got := len(r.Stats().WorkerLaneBusyNS); got != 4 {
		t.Fatalf("stats report %d lanes, want 4", got)
	}
}

// TestZyzzyvaForcedSingleLane pins the documented contract: Zyzzyva's
// speculative history is inherently ordered, so the replica must run it
// on one lane no matter what W the operator asks for.
func TestZyzzyvaForcedSingleLane(t *testing.T) {
	cfg := validConfig(t)
	cfg.Protocol = Zyzzyva
	cfg.WorkerThreads = 8
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.WorkerLanes() != 1 {
		t.Fatalf("zyzzyva lanes = %d, want 1", r.WorkerLanes())
	}
}

// TestLaneRouting checks the routing invariants the engine relies on:
// sequence-carrying messages spread by seq mod W, control traffic stays
// on lane 0, and messages for one sequence number always share a lane.
func TestLaneRouting(t *testing.T) {
	cfg := validConfig(t)
	cfg.WorkerThreads = 4
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for seq := types.SeqNum(1); seq <= 16; seq++ {
		want := int(uint64(seq) % 4)
		pp := &types.PrePrepare{Seq: seq}
		p := &types.Prepare{Seq: seq}
		c := &types.Commit{Seq: seq}
		if r.laneOf(pp) != want || r.laneOf(p) != want || r.laneOf(c) != want {
			t.Fatalf("seq %d not routed consistently to lane %d", seq, want)
		}
	}
	// Control traffic has no instance to stripe: lane 0.
	for _, m := range []types.Message{
		&types.ViewChange{NewView: 3},
		&types.NewView{View: 3},
		&types.CommitCert{Seq: 9},
	} {
		if got := r.laneOf(m); got != 0 {
			t.Fatalf("%T routed to lane %d, want control lane 0", m, got)
		}
	}
	// Messages for a view other than the engine's current one must stay
	// on lane 0: a new view's first pre-prepares follow the NewView from
	// the same sender and must not overtake it on a seq lane.
	for _, m := range []types.Message{
		&types.PrePrepare{View: 1, Seq: 6},
		&types.Prepare{View: 1, Seq: 6},
		&types.Commit{View: 1, Seq: 6},
	} {
		if got := r.laneOf(m); got != 0 {
			t.Fatalf("other-view %T routed to lane %d, want control lane 0", m, got)
		}
	}
}

// TestDecodeFailuresSplitFromAuthFailures pins the stats split: malformed
// bodies must land in DecodeFailures, not AuthFailures, so garbage
// traffic cannot mask a real forgery signal.
func TestDecodeFailuresSplitFromAuthFailures(t *testing.T) {
	r, err := New(validConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	// A Prepare body must be 8+8+32+2 bytes; 3 bytes cannot decode.
	r.route(&types.Envelope{
		From: types.ReplicaNode(1),
		To:   types.ReplicaNode(0),
		Type: types.MsgPrepare,
		Body: []byte{1, 2, 3},
	}, false)
	s := r.Stats()
	if s.DecodeFailures != 1 {
		t.Fatalf("DecodeFailures = %d, want 1", s.DecodeFailures)
	}
	if s.AuthFailures != 0 {
		t.Fatalf("AuthFailures = %d, want 0 (decode garbage must not count as auth)", s.AuthFailures)
	}
}

// TestEnqueueOutAfterStopDoesNotPanic pins the shutdown guard that
// replaced the recover() hack: a producer that races Stop (the watchdog,
// a late execution) must drop its envelope cleanly.
func TestEnqueueOutAfterStopDoesNotPanic(t *testing.T) {
	r, err := New(validConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	r.Stop()
	before := r.Stats().MsgsOut
	r.enqueueOut(&types.Envelope{
		From: types.ReplicaNode(0),
		To:   types.ReplicaNode(1),
		Type: types.MsgPrepare,
	})
	if got := r.Stats().MsgsOut; got != before {
		t.Fatalf("MsgsOut grew from %d to %d after Stop", before, got)
	}
}

package replica

import (
	"errors"
	"sort"
	"time"

	"resilientdb/internal/consensus"
	"resilientdb/internal/crypto"
	"resilientdb/internal/store"
	"resilientdb/internal/types"
	"resilientdb/internal/workload"
)

// ---- Input stage (Section 4.1) ----

// inputClientLoop services inbox 0: client requests and, for Zyzzyva,
// client commit certificates. With a verify stage (pend non-nil), commit
// certificates are authenticated in the verify pool instead of on the
// worker-thread; client request signatures stay with the batch stage,
// which verifies them batch-wise (Section 4.3).
func (r *Replica) inputClientLoop(inbox <-chan *types.Envelope, pend chan<- verifiedItem) {
	defer r.inputWg.Done()
	if pend != nil {
		defer close(pend)
	}
	for env := range inbox {
		t0 := time.Now()
		r.msgsIn.Add(1)
		switch env.Type {
		case types.MsgClientRequest:
			r.handleClientRequest(env)
		case types.MsgReadRequest:
			r.handleReadRequest(env)
		case types.MsgCommitCert:
			if pend != nil {
				// Ownership moves to the forwarder, which releases the
				// envelope after routing (or on auth failure).
				pend <- verifiedItem{env: env, res: r.verifyPool.SubmitPooled(env.From, env.Body, env.Auth)}
				break
			}
			r.route(env, false)
		default:
			// An unexpected type on the client inbox is malformed traffic,
			// not an authentication failure.
			r.decodeFailures.Add(1)
			env.Release()
		}
		r.addBusy(StageInput, time.Since(t0))
	}
}

// handleClientRequest decodes one client request off the client inbox and
// hands the decoded copy to the batch stage. Decoding copies every field
// out of the envelope, so whatever the outcome the envelope retires here —
// its frame arena may be recycled the moment this returns.
func (r *Replica) handleClientRequest(env *types.Envelope) {
	defer env.Release()
	msg, err := types.DecodeBody(env.Type, env.Body)
	if err != nil {
		r.decodeFailures.Add(1)
		return
	}
	req, ok := msg.(*types.ClientRequest)
	if !ok {
		return
	}
	if r.isPrimaryHint() {
		if r.cfg.BatchThreads > 0 {
			r.batchQ.Push(req)
		} else {
			// 0B mode: batch assembly lives on lane 0.
			select {
			case r.workQs[0] <- workItem{req: req}:
			case <-r.stop:
			}
		}
	} else {
		// A client that resorts to contacting backups signals a
		// stalled primary; remember it for the watchdog.
		r.pendingHint.Store(true)
	}
}

// handleReadRequest services a locally served read (the
// consensus-bypassing read path): the client asked this one replica for
// current values. The input stage authenticates and decodes, then hands
// the request to the dedicated read lane — a local read never touches a
// consensus lane and never consumes a sequence number, and a slow
// (disk-bound) multi-key read never head-of-line blocks the client inbox
// behind its store reads. The envelope retires here on every path: the
// read lane only sees the decoded (copied) request.
func (r *Replica) handleReadRequest(env *types.Envelope) {
	defer env.Release()
	if err := r.auth.Verify(env.From, env.Body, env.Auth); err != nil {
		r.authFailures.Add(1)
		return
	}
	msg, err := types.DecodeBody(env.Type, env.Body)
	if err != nil {
		r.decodeFailures.Add(1)
		return
	}
	req, ok := msg.(*types.ReadRequest)
	if !ok {
		return
	}
	// Bind the claimed client to the authenticated sender, mirroring
	// the signed-Client binding the ordered ClientRequest path
	// enforces. The authenticated reply goes to req.Client and
	// ClientSeq values are guessable, so without this check a
	// malicious client could plant answers for attacker-chosen keys
	// in a victim's pending read.
	if env.From != types.ClientNode(req.Client) {
		r.authFailures.Add(1)
		return
	}
	select {
	case r.readQ <- req:
	default:
		// The read lane is saturated: drop rather than block
		// consensus-bound traffic behind it. The client times out
		// and rotates to another replica.
		r.localReadDrops.Add(1)
	}
}

// inputReplicaLoop services one replica-traffic inbox. With a verify
// stage (pend non-nil) every envelope is submitted to the verification
// pool and handed to the inbox's forwarder; otherwise it is routed
// directly and the worker-thread verifies inline.
func (r *Replica) inputReplicaLoop(inbox <-chan *types.Envelope, pend chan<- verifiedItem) {
	defer r.inputWg.Done()
	if pend != nil {
		defer close(pend)
	}
	for env := range inbox {
		t0 := time.Now()
		r.msgsIn.Add(1)
		if pend != nil {
			pend <- verifiedItem{env: env, res: r.verifyPool.SubmitPooled(env.From, env.Body, env.Auth)}
		} else {
			r.route(env, false)
		}
		r.addBusy(StageInput, time.Since(t0))
	}
}

// readLoop is one worker of the read lane: it answers locally served
// ReadRequests (point keys and scans) from the last-executed state, off
// the input loop, so store reads — a locked disk read per key with the
// read index disabled — are paid here instead of head-of-line blocking
// all client traffic. lastRetired is loaded before the keys are read and
// applied writes never roll back, so the stamped Seq is a valid per-key
// freshness lower bound (there is no cross-key snapshot; see
// types.ReadRequest). A request whose MinSeq this replica has not yet
// retired is refused — the reply carries the stamped Seq but no results —
// and the client falls back to the quorum path, which is how the
// staleness bound on local reads is enforced.
func (r *Replica) readLoop() {
	defer r.readWg.Done()
	for req := range r.readQ {
		last := r.lastRetired.Load()
		reply := &types.ReadReply{
			Client:    req.Client,
			ClientSeq: req.ClientSeq,
			Seq:       types.SeqNum(last),
			Replica:   r.cfg.ID,
		}
		if last >= uint64(req.MinSeq) {
			reply.Results = make([]types.ReadResult, 0, len(req.Keys)+len(req.Scans))
			for _, key := range req.Keys {
				reply.Results = append(reply.Results, r.readKey(key))
			}
			for i := range req.Scans {
				sc := &req.Scans[i]
				reply.Results = append(reply.Results, r.scanRange(sc.Key, sc.EndKey, sc.Limit))
			}
		}
		r.localReads.Add(1)
		r.sendTo(types.ClientNode(req.Client), reply)
	}
}

// route decodes an envelope and hands it to the stage that owns it:
// checkpoint traffic to the checkpoint-thread, sequence-carrying consensus
// messages to the worker lane owning their sequence number, and control
// traffic to lane 0. Decoding here — on the input/verify stage, off the
// worker lanes — is what makes sequence-based routing possible at all;
// malformed bodies are counted as DecodeFailures and dropped before they
// can cost a worker lane anything. With VerifyThreads == 0 the body is
// decoded before its authenticator is checked (the auth check stays on
// the worker lane, the paper's cost assignment); that gives unverified
// peers pre-auth parsing on the input stage, but DecodeBody is
// bounds-checked and O(body bytes) — the same order as the MAC check the
// envelope must pay anyway.
func (r *Replica) route(env *types.Envelope, verified bool) {
	msg, err := types.DecodeBody(env.Type, env.Body)
	if err != nil {
		r.decodeFailures.Add(1)
		env.Release()
		return
	}
	q := r.workQs[r.laneOf(msg)]
	if env.Type == types.MsgCheckpoint {
		q = r.ckptQ
	}
	select {
	case q <- workItem{env: env, msg: msg, verified: verified}:
		// Ownership moves to the worker lane, which releases the envelope
		// after processing it.
	case <-r.stop:
		env.Release()
	}
}

// laneOf returns the worker lane for a decoded message. Independent
// consensus instances of the current view spread across lanes by sequence
// number; everything else stays on lane 0:
//
//   - messages without a natural instance — view changes, new-views,
//     Zyzzyva commit certificates — so control traffic keeps a single
//     ordered lane;
//   - messages for a view other than the engine's current one. A NewView
//     routes to lane 0, and the new primary's first pre-prepares of view
//     v+1 follow it from the same inbox; sending them to a seq lane
//     would let them overtake the NewView still queued on lane 0 and be
//     dropped as wrong-view — a permanent hole, since pre-prepares are
//     not retransmitted. Pinning other-view traffic to lane 0 preserves
//     the per-sender FIFO through the view transition (the engine's view
//     read is an atomic, so this check is free).
func (r *Replica) laneOf(msg types.Message) int {
	if r.lanes == 1 {
		return 0
	}
	var view types.View
	var seq types.SeqNum
	switch m := msg.(type) {
	case *types.PrePrepare:
		view, seq = m.View, m.Seq
	case *types.Prepare:
		view, seq = m.View, m.Seq
	case *types.Commit:
		view, seq = m.View, m.Seq
	case *types.OrderedRequest:
		// Unreachable in practice: Zyzzyva engines run a single lane.
		view, seq = m.View, m.Seq
	default:
		return 0
	}
	if view != r.engine.View() {
		return 0
	}
	return int(uint64(seq) % uint64(r.lanes))
}

// verifyForwardLoop is one inbox's forwarder: it awaits verification
// results in submission order — keeping the inbox FIFO the engines rely
// on — and forwards only authenticated envelopes, so downstream stages
// never re-verify.
func (r *Replica) verifyForwardLoop(pend <-chan verifiedItem) {
	defer r.verifyWg.Done()
	for it := range pend {
		if err := it.res.Await(); err != nil {
			r.authFailures.Add(1)
			it.env.Release()
			continue
		}
		r.route(it.env, true)
	}
}

// isPrimaryHint is the lock-free primary check used on the hot input path;
// it is refreshed whenever the view changes.
func (r *Replica) isPrimaryHint() bool {
	return !r.notPrimary.Load()
}

// ---- Batch stage (Section 4.3) ----

// batchLoop is one batch-thread: it drains the shared lock-free queue,
// assembles up to BatchSize transactions (flushing after BatchLinger),
// verifies client signatures, and proposes the batch. Waiting for the
// first request of a batch and lingering for stragglers both park on the
// queue's blocking API — an idle batch-thread burns no CPU.
func (r *Replica) batchLoop() {
	defer r.stage1Wg.Done()
	for {
		first, ok := r.batchQ.Pop()
		if !ok {
			return
		}
		t0 := time.Now()
		reqs := []types.ClientRequest{*first}
		txns := len(first.Txns)
		r.reqPool.Put(first)
		deadline := t0.Add(r.cfg.BatchLinger)
		for txns < r.cfg.BatchSize {
			next, ok := r.batchQ.PopWait(time.Until(deadline))
			if !ok {
				break // linger expired or queue closed: flush what we have
			}
			reqs = append(reqs, *next)
			txns += len(next.Txns)
			r.reqPool.Put(next)
		}
		r.propose(reqs)
		r.addBusy(StageBatch, time.Since(t0))
	}
}

// propose verifies client signatures and drives the engine's Propose,
// retrying while the watermark window is full.
func (r *Replica) propose(reqs []types.ClientRequest) {
	if len(reqs) == 0 {
		return
	}
	if r.cfg.VerifyClientSigs {
		reqs = r.verifyClientSigs(reqs)
		if len(reqs) == 0 {
			return
		}
	}
	for {
		if r.cfg.DisableOutOfOrder {
			// Ablation: strictly one consensus instance at a time.
			for r.inflight.Load() > 0 {
				if !r.awaitProgress() {
					return
				}
			}
		}
		if !r.engine.IsPrimary() {
			return // lost the primary role; clients will retransmit
		}
		acts := r.engine.Propose(reqs)
		if acts != nil {
			if r.cfg.DisableOutOfOrder {
				r.inflight.Add(1)
			}
			r.handleActions(acts)
			return
		}
		// Watermark window full (or the primary role was lost between the
		// check and the call): park until execution catches up.
		if !r.awaitProgress() {
			return
		}
	}
}

// verifyClientSigs checks every request's client signature and returns the
// survivors in order. With a verify pool available the checks fan out
// across its workers — submitted in order, awaited in order — so one RSA
// verify on the batch-thread no longer serializes the whole batch; without
// a pool (VerifyThreads <= 0) the checks run inline, which is the paper's
// cost assignment for the 0V ablation.
func (r *Replica) verifyClientSigs(reqs []types.ClientRequest) []types.ClientRequest {
	if r.verifyPool == nil || len(reqs) == 1 {
		kept := reqs[:0]
		for i := range reqs {
			if err := r.auth.Verify(types.ClientNode(reqs[i].Client), reqs[i].SigningBytes(), reqs[i].Sig); err != nil {
				r.authFailures.Add(1)
				continue
			}
			kept = append(kept, reqs[i])
		}
		return kept
	}
	pending := make([]*crypto.Pending, len(reqs))
	for i := range reqs {
		pending[i] = r.verifyPool.SubmitPooled(types.ClientNode(reqs[i].Client), reqs[i].SigningBytes(), reqs[i].Sig)
	}
	kept := reqs[:0]
	for i := range reqs {
		if err := pending[i].Await(); err != nil {
			r.authFailures.Add(1)
			continue
		}
		kept = append(kept, reqs[i])
	}
	return kept
}

// awaitProgress parks the calling batch-thread until the pipeline makes
// progress (a batch executes or a checkpoint stabilizes) or a fallback
// timer fires — the capacity-one progress channel may swallow a signal
// under contention, so waiters never rely on it alone. It reports false
// when the replica is stopping.
func (r *Replica) awaitProgress() bool {
	t := time.NewTimer(2 * time.Millisecond)
	defer t.Stop()
	select {
	case <-r.stop:
		return false
	case <-r.progressC:
		return true
	case <-t.C:
		return true
	}
}

// signalProgress wakes one parked batch-thread; it never blocks.
func (r *Replica) signalProgress() {
	select {
	case r.progressC <- struct{}{}:
	default:
	}
}

// ---- Worker stage (Sections 4.3–4.4) ----

// workerLoop is lane 0: it drives the consensus engine over control and
// lane-0 consensus traffic and (in 0B mode) also assembles batches.
func (r *Replica) workerLoop() {
	defer r.stage1Wg.Done()
	var pend []types.ClientRequest
	pendTxns := 0
	var lingerC <-chan time.Time

	flush := func() {
		if len(pend) > 0 {
			r.propose(pend)
			pend = nil
			pendTxns = 0
		}
		lingerC = nil
	}

	for {
		select {
		case item, ok := <-r.workQs[0]:
			if !ok {
				flush()
				return
			}
			t0 := time.Now()
			if item.req != nil {
				pend = append(pend, *item.req)
				pendTxns += len(item.req.Txns)
				if pendTxns >= r.cfg.BatchSize {
					flush()
				} else if lingerC == nil {
					lingerC = time.After(r.cfg.BatchLinger)
				}
			} else {
				r.processItem(item)
			}
			r.addLaneBusy(0, time.Since(t0))
		case <-lingerC:
			t0 := time.Now()
			flush()
			r.addLaneBusy(0, time.Since(t0))
		}
	}
}

// laneLoop is one worker lane beyond lane 0: it steps the engine over the
// consensus messages whose sequence numbers route here. Only
// sequence-carrying traffic ever lands on these lanes.
func (r *Replica) laneLoop(lane int) {
	defer r.stage1Wg.Done()
	for item := range r.workQs[lane] {
		t0 := time.Now()
		r.processItem(item)
		r.addLaneBusy(lane, time.Since(t0))
	}
}

// processItem authenticates and applies one decoded peer message (the
// input/verify stage already decoded it). With VerifyThreads == 0
// signature verification happens here, on the worker lane, exactly where
// the paper assigns it (Section 4.3); when the verify stage already
// authenticated the envelope (verified true) it is not checked again.
func (r *Replica) processItem(item workItem) {
	env := item.env
	// The lane is the envelope's final owner. Both things that outlive
	// this call — the decoded message and env.Auth — are copies (decode
	// copies every message field; Envelope.decode copies Auth precisely
	// because engines retain authenticators in commit certificates), so
	// the frame arena may be recycled when this returns.
	defer env.Release()
	if !item.verified {
		if err := r.auth.Verify(env.From, env.Body, env.Auth); err != nil {
			r.authFailures.Add(1)
			return
		}
	}
	// Batch digest verification for proposals: the hashing cost lands on
	// the worker lanes at backups, where seq-based routing spreads it
	// across all W lanes.
	switch m := item.msg.(type) {
	case *types.PrePrepare:
		if len(m.Requests) > 0 && types.BatchDigest(m.Requests) != m.Digest {
			r.authFailures.Add(1)
			return
		}
	case *types.OrderedRequest:
		if len(m.Requests) > 0 && types.BatchDigest(m.Requests) != m.Digest {
			r.authFailures.Add(1)
			return
		}
	}
	acts := r.engine.OnMessage(env.From, item.msg, env.Auth)
	r.handleActions(acts)
}

// ---- Checkpoint stage (Section 4.7) ----

func (r *Replica) checkpointLoop() {
	defer r.stage1Wg.Done()
	for item := range r.ckptQ {
		t0 := time.Now()
		r.processItem(item)
		r.addBusy(StageCheckpoint, time.Since(t0))
	}
}

// ---- Store compaction (checkpoint-driven, Section 4.7) ----

// signalCompact nudges the compactor goroutine; it never blocks, and a
// swallowed signal only defers compaction to the next stable checkpoint.
func (r *Replica) signalCompact() {
	if r.compactC == nil {
		return
	}
	select {
	case r.compactC <- struct{}{}:
	default:
	}
}

// compactLoop is the replica's single compactor thread: stable
// checkpoints wake it and it runs the store's threshold-driven
// MaybeCompact, so a log rewrite stalls (at most) one shard's writers but
// never a consensus lane or the checkpoint-thread. Errors are not fatal —
// a failed rewrite leaves the old log authoritative — and surface through
// Stats.StoreCompactFailures.
func (r *Replica) compactLoop() {
	defer r.compactWg.Done()
	for {
		select {
		case <-r.stop:
			return
		case <-r.compactC:
			_, _ = r.compactor.MaybeCompact()
		}
	}
}

// ---- Action dispatch ----

// handleActions interprets engine outputs. It may be called from any
// lane, the checkpoint-thread, the execute-thread, or the watchdog; every
// path it touches is safe for concurrent use.
func (r *Replica) handleActions(acts []consensus.Action) {
	for _, a := range acts {
		switch act := a.(type) {
		case consensus.Broadcast:
			r.broadcast(act.Msg)
		case consensus.Send:
			r.sendTo(act.To, act.Msg)
		case consensus.Execute:
			r.execPending.Add(1)
			if r.cfg.ExecuteThreads > 0 {
				r.execIn.Offer(uint64(act.Seq), execItem{act: act})
			} else {
				r.inlineExecute(act)
			}
		case consensus.CheckpointStable:
			r.ledger.Prune(uint64(act.Seq))
			// A stable checkpoint is the paper's license to discard old
			// state (§4.7): the same moment the ledger prunes, the durable
			// store may drop superseded record versions. Nudge the
			// compactor goroutine; it applies the garbage-ratio threshold.
			r.signalCompact()
			// A stable checkpoint advances the watermark window; wake any
			// batch-thread parked on a full window.
			r.signalProgress()
		case consensus.ViewChanged:
			r.notPrimary.Store(consensus.PrimaryOf(act.View, r.cfg.N) != r.cfg.ID)
		case consensus.Evidence:
			r.evidence.Add(1)
		}
	}
}

// inlineExecute serializes in-order execution on the calling thread for 0E
// configurations: batches parked in a reorder map are drained strictly by
// sequence number under the execution lock.
func (r *Replica) inlineExecute(act consensus.Execute) {
	r.inlineMu.Lock()
	defer r.inlineMu.Unlock()
	r.inlinePending[uint64(act.Seq)] = act
	for {
		next, ok := r.inlinePending[r.inlineNext]
		if !ok {
			return
		}
		delete(r.inlinePending, r.inlineNext)
		r.inlineNext++
		t0 := time.Now()
		r.executeBatch(next)
		// In 0E mode execution time is the worker's burden.
		r.addBusy(StageWorker, time.Since(t0))
	}
}

// ---- Execute stage (Section 4.6) ----

// executeLoop is the coordinating execute-thread. It drains the in-order
// queue strictly by sequence number and, with ExecPipelineDepth P > 1,
// keeps up to P committed batches in flight across the execution shards:
// batch k+1's partitions are fanned out before batch k's barrier is
// waited. Per-shard FIFO queues are the conflict mechanism — a later
// batch's partition for shard s queues behind an earlier batch's job on
// the same shard, so conflicting (same-shard) key partitions stay in
// batch order, while shards the earlier batch left idle start on the new
// batch immediately. Retirement (barrier wait, ledger append, checkpoint
// digest, client responses) always happens in sequence order, which is
// what keeps the ledger and checkpoint digests byte-identical to serial
// execution.
func (r *Replica) executeLoop() {
	defer r.execWg.Done()
	if r.execDepth <= 1 {
		for {
			_, item, ok := r.execIn.Next()
			if !ok {
				return
			}
			t0 := time.Now()
			r.executeBatch(item.act)
			r.addBusy(StageExecute, time.Since(t0))
		}
	}
	var inflight []*inflightExec
	retireOldest := func() {
		b := inflight[0]
		inflight = inflight[1:]
		t0 := time.Now()
		r.retireBatch(b)
		r.addBusy(StageExecute, time.Since(t0))
	}
	for {
		var item execItem
		if len(inflight) == 0 {
			_, it, ok := r.execIn.Next()
			if !ok {
				break
			}
			item = it
		} else if _, it, ok := r.execIn.TryNext(); ok {
			item = it
		} else {
			// Nothing new is ready: retire the oldest in-flight batch
			// rather than sitting on completed work — the overlap window
			// only stays open while there is a backlog to overlap with.
			// This is also what bounds response latency at depth > 1.
			retireOldest()
			continue
		}
		t0 := time.Now()
		inflight = append(inflight, r.stageBatch(item.act))
		r.addBusy(StageExecute, time.Since(t0))
		for len(inflight) >= r.execDepth {
			retireOldest()
		}
	}
	// Shutdown: drain the in-flight window so every accepted batch still
	// reaches the ledger and its clients.
	for len(inflight) > 0 {
		retireOldest()
	}
}

// executeBatch applies one committed batch with the strict per-batch
// barrier: stage (dedup, partition, fan-out or serial apply) then retire
// (barrier, ledger, checkpoint, responses) back to back. The 0E inline
// path and the depth-1 execute-thread both use it.
//
// The sharded path is deterministic: per-client dedup runs on the
// coordinator before fan-out, one key always maps to the same shard
// (workload.ShardOf), each shard applies its partition in batch order, and
// in-order retirement keeps whole batches ordered. So the store contents,
// ledger, and checkpoint digests are byte-identical to serial execution.
func (r *Replica) executeBatch(act consensus.Execute) {
	r.retireBatch(r.stageBatch(act))
}

// stageBatch runs the coordinator half of execution for one committed
// batch: per-client dedup, typed-op partitioning, and fan-out to the
// shard workers (or, for serial execution, the store operations
// themselves). It must be called in sequence order — dedup state advances
// here. Read results land in slot order — slots are assigned in (request,
// transaction, op) order as the coordinator walks the batch, and
// duplicate-skipped transactions contribute none — so the result layout
// is identical for serial and sharded execution.
//
// Ops within one transaction observe earlier ops' writes (read-your-
// writes): serially that is immediate, and sharded it holds because a
// key's write and read land in the same shard partition in batch order,
// and the worker flushes pending writes before answering a read. A scan
// spans shards, so it is appended to every shard's partition at its batch
// position: each worker reaches the scan only after flushing exactly the
// writes that precede it in batch order, computes the sorted fragment of
// its own key partition, and the coordinator merges the disjoint
// fragments at retirement — byte-identical to the serial scan.
func (r *Replica) stageBatch(act consensus.Execute) *inflightExec {
	b := &inflightExec{act: act}
	sharded := r.execShards > 1
	if sharded {
		b.parts = <-r.partsFree
		for i := range b.parts {
			b.parts[i] = b.parts[i][:0]
		}
	}
	nextSlot := 0
	// Only the coordinator mutates lastExec; the lock is taken once per
	// batch so DedupSnapshot (the restart-bootstrap export) sees a
	// consistent table.
	r.dedupMu.Lock()
	defer r.dedupMu.Unlock()
	for i := range act.Requests {
		req := &act.Requests[i]
		b.txnCount += uint32(len(req.Txns))
		start := nextSlot
		last := r.lastExec[req.Client]
		for j := range req.Txns {
			txn := &req.Txns[j]
			if txn.ClientSeq <= last && last != 0 {
				continue // duplicate delivery (e.g. re-proposed after view change)
			}
			for k := range txn.Ops {
				op := &txn.Ops[k]
				if op.Kind == types.OpRead {
					if b.readRanges == nil {
						b.readRanges = make([]readRange, len(act.Requests))
					}
					if sharded {
						sh := workload.ShardOf(op.Key, r.execShards)
						b.parts[sh] = append(b.parts[sh],
							shardOp{key: op.Key, slot: nextSlot, read: true})
					} else {
						// Serial execution reads inline: every earlier
						// write of this batch has already been applied, so
						// the read observes exactly the prefix before it.
						b.reads = append(b.reads, r.readKey(op.Key))
					}
					nextSlot++
					continue
				}
				if op.Kind == types.OpScan {
					if b.readRanges == nil {
						b.readRanges = make([]readRange, len(act.Requests))
					}
					if sharded {
						// The scan joins every shard's partition at this
						// batch position; frags[sh] receives shard sh's
						// sorted fragment and the merge happens at retire.
						frags := make([][]types.ScanRow, r.execShards)
						for sh := 0; sh < r.execShards; sh++ {
							b.parts[sh] = append(b.parts[sh], shardOp{
								key: op.Key, end: op.EndKey, limit: op.Limit,
								scan: true, frag: &frags[sh],
							})
						}
						b.scans = append(b.scans, pendingScan{slot: nextSlot, limit: op.Limit, frags: frags})
					} else {
						b.reads = append(b.reads, r.scanRange(op.Key, op.EndKey, op.Limit))
					}
					nextSlot++
					continue
				}
				// YCSB-style write application (Section 5.1).
				if sharded {
					sh := workload.ShardOf(op.Key, r.execShards)
					b.parts[sh] = append(b.parts[sh],
						shardOp{key: op.Key, value: op.Value})
				} else if err := r.store.Put(op.Key, op.Value); err != nil {
					// A durable store can fail (full disk, failed fsync);
					// a silently lost write would diverge store state from
					// the ledger, so make it loud.
					r.storeFailures.Add(1)
				}
			}
			if txn.ClientSeq > last {
				last = txn.ClientSeq
			}
		}
		r.lastExec[req.Client] = last
		if b.readRanges != nil {
			b.readRanges[i] = readRange{start: start, n: nextSlot - start}
		}
	}
	if sharded {
		if nextSlot > 0 {
			// Allocated before fan-out: shard workers fill disjoint slots.
			b.reads = make([]types.ReadResult, nextSlot)
		}
		for sh := range b.parts {
			if len(b.parts[sh]) == 0 {
				continue
			}
			b.done.Add(1)
			r.shardQs[sh] <- execShardJob{ops: b.parts[sh], reads: b.reads, done: &b.done}
		}
	}
	return b
}

// readKey answers one read against the store's current (last-applied)
// state. A missing key is a normal outcome; any other store error is the
// read-side analogue of a lost write and is counted loudly.
func (r *Replica) readKey(key uint64) types.ReadResult {
	v, err := r.store.Get(key)
	switch {
	case err == nil:
		return types.ReadResult{Found: true, Value: v}
	case errors.Is(err, store.ErrNotFound):
		return types.ReadResult{}
	default:
		r.storeFailures.Add(1)
		return types.ReadResult{}
	}
}

// scanRange answers one scan op against the store's current state:
// ascending rows of [start, end], truncated to limit. An inverted range
// or zero limit returns no rows (well-formed per types.Op); a store
// without an ordered view, or a failing one, returns no rows and counts
// a store failure. Rows grow incrementally, so a hostile limit cannot
// drive an allocation.
func (r *Replica) scanRange(start, end uint64, limit uint32) types.ReadResult {
	res := types.ReadResult{Scan: true}
	if limit == 0 || start > end {
		return res
	}
	if r.scanner == nil {
		r.storeFailures.Add(1)
		return res
	}
	err := r.scanner.Scan(start, end, func(k uint64, v []byte) bool {
		res.Rows = append(res.Rows, types.ScanRow{Key: k, Value: v})
		return uint32(len(res.Rows)) < limit
	})
	if err != nil {
		r.storeFailures.Add(1)
	}
	return res
}

// scanShardFragment computes one shard worker's fragment of a fanned-out
// scan: the ascending rows of [op.key, op.end] whose keys the shard owns,
// capped at op.limit (lossless — see pendingScan). Filtering to the
// shard's own partition is what makes the fragment a pure function of the
// shard's serially ordered write prefix even while other shards are
// mid-batch: a key's writes only ever come from its owning shard.
func (r *Replica) scanShardFragment(shard int, op *shardOp) []types.ScanRow {
	if op.limit == 0 || op.key > op.end {
		return nil
	}
	if r.scanner == nil {
		r.storeFailures.Add(1)
		return nil
	}
	var rows []types.ScanRow
	err := r.scanner.Scan(op.key, op.end, func(k uint64, v []byte) bool {
		if workload.ShardOf(k, r.execShards) != shard {
			return true
		}
		rows = append(rows, types.ScanRow{Key: k, Value: v})
		return uint32(len(rows)) < op.limit
	})
	if err != nil {
		r.storeFailures.Add(1)
	}
	return rows
}

// mergeScanFrags merges per-shard scan fragments into the final row set:
// fragments are each ascending and their key sets disjoint (one key, one
// shard), so sorting the concatenation by key is a deterministic merge,
// truncated to the scan's limit.
func mergeScanFrags(frags [][]types.ScanRow, limit uint32) []types.ScanRow {
	total := 0
	for _, f := range frags {
		total += len(f)
	}
	if total == 0 {
		return nil
	}
	merged := make([]types.ScanRow, 0, total)
	for _, f := range frags {
		merged = append(merged, f...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Key < merged[j].Key })
	if uint32(len(merged)) > limit {
		merged = merged[:limit]
	}
	return merged
}

// retireBatch completes one staged batch in sequence order: wait for its
// shard barrier, append the block, report the execution to the engine
// (driving checkpoints), and answer every client in the batch.
func (r *Replica) retireBatch(b *inflightExec) {
	defer r.execPending.Add(-1)
	b.done.Wait()
	if b.parts != nil {
		// The workers are done with the partition buffers; recycle them.
		r.partsFree <- b.parts
		b.parts = nil
	}
	// The barrier passed, so every shard's scan fragments are final; merge
	// them into their result slots before responses are built.
	for i := range b.scans {
		ps := &b.scans[i]
		b.reads[ps.slot] = types.ReadResult{Scan: true, Rows: mergeScanFrags(ps.frags, ps.limit)}
	}
	act := b.act

	if _, err := r.ledger.Append(act.Seq, act.View, act.Digest, act.Proof, b.txnCount); err != nil {
		// An append gap is a fatal pipeline bug; surface loudly in stats.
		r.evidence.Add(1)
		return
	}

	ckActs := r.engine.OnExecuted(act.Seq, r.ledger.StateDigest())
	r.handleActions(ckActs)

	// The batch is applied and appended: this sequence number is now the
	// snapshot position locally served reads report.
	r.lastRetired.Store(uint64(act.Seq))

	// Respond to every client in the batch, attaching each request's span
	// of the read-result buffer. The busy gauge is sampled once per batch
	// — cheap enough for the hot path, fresh enough for admission control
	// — and stamped on every response so gateways see replica load on
	// traffic they already receive. It is advisory: outside Result and
	// outside the client's vote key, so replicas under different load
	// still form a quorum.
	busy := r.busyGauge()
	for i := range act.Requests {
		req := &act.Requests[i]
		var reads []types.ReadResult
		if b.readRanges != nil {
			if rr := b.readRanges[i]; rr.n > 0 {
				reads = b.reads[rr.start : rr.start+rr.n]
			}
		}
		result := types.ResponseDigest(act.Seq, req.Client, req.FirstSeq, reads)
		var resp types.Message
		if act.Speculative {
			resp = &types.SpecResponse{
				View:        act.View,
				Seq:         act.Seq,
				Digest:      act.Digest,
				History:     act.History,
				Client:      req.Client,
				ClientSeq:   req.FirstSeq,
				Result:      result,
				Replica:     r.cfg.ID,
				ReadResults: reads,
				Busy:        busy,
			}
		} else {
			resp = &types.ClientResponse{
				View:        act.View,
				Seq:         act.Seq,
				Client:      req.Client,
				ClientSeq:   req.FirstSeq,
				Result:      result,
				Replica:     r.cfg.ID,
				ReadResults: reads,
				Busy:        busy,
			}
		}
		r.sendTo(types.ClientNode(req.Client), resp)
	}

	if n := len(b.reads); n > 0 {
		r.readsExecuted.Add(uint64(n))
	}
	r.txnsExecuted.Add(uint64(b.txnCount))
	r.batchesExecuted.Add(1)
	if r.cfg.DisableOutOfOrder {
		r.inflight.Add(-1)
	}
	r.pendingHint.Store(false)
	r.lastProgress.Store(time.Now().UnixNano())
	r.signalProgress()
}

// execShardLoop is one execution shard worker: it applies its partition
// of each committed batch to the store in batch order and signals the
// batch barrier. Consecutive writes accumulate into a scratch buffer
// applied in one batched call (store.Batcher) when the store supports it;
// stores without it — DiskStore, whose blocking serialized API is the
// Section 5.7 contrast — fall back to per-op Puts serialized by the store
// itself. Pending writes always flush before a read executes, so a read
// observes every earlier write to its key: same-batch ones through the
// flush, earlier-batch ones through the shard queue's FIFO (one key
// always maps to one shard). Each read's result lands in its assigned
// slot of the batch's shared result buffer; partitions carry disjoint
// slots, so workers never race on an element.
func (r *Replica) execShardLoop(shard int) {
	defer r.shardWg.Done()
	var scratch []store.KV
	flush := func() {
		if len(scratch) == 0 {
			return
		}
		if r.execBatch != nil {
			if err := r.execBatch.PutMany(scratch); err != nil {
				// Lost writes diverge store state from the ledger; count
				// them loudly (StoreWriteFailures) instead of swallowing.
				r.storeFailures.Add(1)
			}
		} else {
			for i := range scratch {
				if err := r.store.Put(scratch[i].Key, scratch[i].Value); err != nil {
					r.storeFailures.Add(1)
				}
			}
		}
		scratch = scratch[:0]
	}
	for job := range r.shardQs[shard] {
		t0 := time.Now()
		for i := range job.ops {
			op := &job.ops[i]
			if op.scan {
				// Flush first so the fragment observes exactly the writes
				// preceding the scan in batch order, then fill this shard's
				// fragment slot; the coordinator merges after the barrier.
				flush()
				*op.frag = r.scanShardFragment(shard, op)
				continue
			}
			if !op.read {
				scratch = append(scratch, store.KV{Key: op.key, Value: op.value})
				continue
			}
			flush()
			job.reads[op.slot] = r.readKey(op.key)
		}
		flush()
		if d := time.Since(t0); d > 0 {
			r.shardBusyNS[shard].Add(uint64(d))
		}
		job.done.Done()
	}
}

// ---- Output stage (Section 4.1) ----

// broadcast signs and enqueues msg for every other replica. Under a
// digital-signature scheme the body is signed once and reused; under CMAC
// a fresh MAC is computed per destination (the MAC-vector cost). With
// pooled encode enabled, the body is marshalled into a pooled buffer whose
// arena every destination's envelope retains; the buffer returns to the
// pool when the last envelope retires (output write, inbox drop, or the
// receiving stage's release).
func (r *Replica) broadcast(msg types.Message) {
	body, arena := r.marshalOut(msg)
	mt := msg.Type()
	var shared []byte
	if !r.auth.PerDestination() {
		sig, err := r.auth.Sign(types.ReplicaNode(0), body)
		if err != nil {
			r.authFailures.Add(1)
			arena.Release()
			return
		}
		shared = sig
	}
	for i := 0; i < r.cfg.N; i++ {
		dst := types.ReplicaID(i)
		if dst == r.cfg.ID {
			continue
		}
		auth := shared
		if auth == nil {
			sig, err := r.auth.Sign(types.ReplicaNode(dst), body)
			if err != nil {
				r.authFailures.Add(1)
				continue
			}
			auth = sig
		}
		env := types.AcquireEnvelope()
		env.From = types.ReplicaNode(r.cfg.ID)
		env.To = types.ReplicaNode(dst)
		env.Type = mt
		env.Body = body
		env.Auth = auth
		env.Attach(arena)
		r.enqueueOut(env)
	}
	// Drop the builder's reference: from here only the envelopes keep the
	// buffer alive.
	arena.Release()
}

// sendTo signs and enqueues msg for a single destination.
func (r *Replica) sendTo(to types.NodeID, msg types.Message) {
	body, arena := r.marshalOut(msg)
	sig, err := r.auth.Sign(to, body)
	if err != nil {
		r.authFailures.Add(1)
		arena.Release()
		return
	}
	env := types.AcquireEnvelope()
	env.From = types.ReplicaNode(r.cfg.ID)
	env.To = to
	env.Type = msg.Type()
	env.Body = body
	env.Auth = sig
	env.Attach(arena)
	r.enqueueOut(env)
	arena.Release()
}

// marshalOut encodes an outbound body, into a pooled arena buffer when
// pooled encode is on (Config.PooledEncode >= 0) and into a fresh
// allocation otherwise. The returned arena carries the builder's
// reference — nil when pooling is off, which Attach and Release both
// tolerate — and the caller must Release it exactly once after attaching
// it to every envelope that shares the body.
func (r *Replica) marshalOut(msg types.Message) ([]byte, *types.Arena) {
	if r.encBufs == nil {
		return types.MarshalBody(msg), nil
	}
	// Seed the pooled buffer with the largest body seen so far: a marshal
	// that outgrows its buffer reallocates on append and strands the
	// undersized slice, so guessing high keeps the path allocation-free
	// (the hint is a high-water mark, and capacity classes round up
	// anyway).
	hint := int(r.encHint.Load())
	body, arena := types.MarshalBodyArena(msg, r.encBufs, hint)
	if n := int64(len(body)); n > int64(hint) {
		r.encHint.Store(n)
	}
	return body, arena
}

// enqueueOut places an envelope on the output queue owned by the
// destination's output-thread (Section 4.1: clients and replicas are
// partitioned across output-threads). The read lock pairs with Stop's
// write-locked close: once outClosed is set the envelope is dropped —
// correct, since the peer is gone or we are shutting down — and a send
// already blocked on a full queue is released by the stop channel, which
// Stop closes before it requests the write lock.
func (r *Replica) enqueueOut(env *types.Envelope) {
	idx := int(uint32(env.To)) % len(r.outQs)
	r.outMu.RLock()
	defer r.outMu.RUnlock()
	if r.outClosed {
		env.Release()
		return
	}
	select {
	case r.outQs[idx] <- env:
		r.msgsOut.Add(1)
	case <-r.stop:
		env.Release()
	}
}

func (r *Replica) outputLoop(q chan *types.Envelope) {
	defer r.outWg.Done()
	for env := range q {
		t0 := time.Now()
		// A successful Send hands ownership to the transport (the TCP
		// writer or the in-process receiver releases it); on error the
		// envelope went nowhere and retires here.
		if err := r.cfg.Endpoint.Send(env); err != nil {
			env.Release() // dead peers are dropped silently
		}
		r.addBusy(StageOutput, time.Since(t0))
	}
}

// ---- Watchdog (view-change trigger) ----

func (r *Replica) watchdogLoop() {
	defer r.watchWg.Done()
	tick := time.NewTicker(r.cfg.ViewTimeout / 2)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
			if !r.pendingHint.Load() {
				continue
			}
			idle := time.Since(time.Unix(0, r.lastProgress.Load()))
			if idle < r.cfg.ViewTimeout {
				continue
			}
			acts := r.engine.OnViewTimeout()
			r.handleActions(acts)
			r.lastProgress.Store(time.Now().UnixNano()) // back off
		}
	}
}

package replica

import (
	"strings"
	"testing"

	"resilientdb/internal/crypto"
	"resilientdb/internal/transport"
	"resilientdb/internal/types"
)

func validConfig(t *testing.T) Config {
	t.Helper()
	dir, err := crypto.NewDirectory(crypto.NoSig(), [32]byte{1})
	if err != nil {
		t.Fatal(err)
	}
	net := transport.NewInproc()
	return Config{
		ID:        0,
		N:         4,
		Protocol:  PBFT,
		Directory: dir,
		Endpoint:  net.Endpoint(types.ReplicaNode(0), 3, 16),
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr string
	}{
		{"valid", func(c *Config) {}, ""},
		{"too few replicas", func(c *Config) { c.N = 3 }, "n ≥ 4"},
		{"id out of range", func(c *Config) { c.ID = 9 }, "out of range"},
		{"bad protocol", func(c *Config) { c.Protocol = 0 }, "protocol"},
		{"sharded execute accepted", func(c *Config) { c.ExecuteThreads = 4 }, ""},
		{"negative execute threads", func(c *Config) { c.ExecuteThreads = -1 }, "ExecuteThreads"},
		{"negative batch threads", func(c *Config) { c.BatchThreads = -1 }, "BatchThreads"},
		{"missing directory", func(c *Config) { c.Directory = nil }, "Directory"},
		{"missing endpoint", func(c *Config) { c.Endpoint = nil }, "Endpoint"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := validConfig(t)
			tt.mutate(&cfg)
			_, err := New(cfg)
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("New() = %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("New() = %v, want error containing %q", err, tt.wantErr)
			}
		})
	}
}

func TestDefaultsApplied(t *testing.T) {
	r, err := New(validConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.cfg.BatchSize != 100 || r.cfg.OutputThreads != 2 || r.cfg.ReplicaInboxes != 2 {
		t.Fatalf("defaults not applied: %+v", r.cfg)
	}
	if r.cfg.CheckpointInterval != 100 {
		t.Fatalf("checkpoint default = %d", r.cfg.CheckpointInterval)
	}
	if !r.IsPrimary() {
		t.Fatal("replica 0 should lead view 0")
	}
}

func TestZyzzyvaForcesHashChainLedger(t *testing.T) {
	cfg := validConfig(t)
	cfg.Protocol = Zyzzyva
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Speculative execution has no commit certificate at block-creation
	// time, so Zyzzyva must chain blocks by hash.
	if got := r.Ledger().Mode().String(); got != "hash-chain" {
		t.Fatalf("ledger mode = %s", got)
	}
}

func TestStartStopIdempotent(t *testing.T) {
	r, err := New(validConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	r.Stop()
	r.Stop() // second Stop must be a no-op, not a panic
	s := r.Stats()
	if s.TxnsExecuted != 0 {
		t.Fatalf("idle replica executed %d txns", s.TxnsExecuted)
	}
}

func TestStageStringNames(t *testing.T) {
	want := map[Stage]string{
		StageInput: "input", StageBatch: "batch", StageWorker: "worker",
		StageExecute: "execute", StageCheckpoint: "checkpoint", StageOutput: "output",
	}
	for stage, name := range want {
		if stage.String() != name {
			t.Fatalf("Stage(%d).String() = %q, want %q", stage, stage.String(), name)
		}
	}
}

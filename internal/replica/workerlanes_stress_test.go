// Stress coverage for the worker-lane fan-out. This lives in an external
// test package so it can drive full clusters (package cluster imports
// package replica) while still running under this package's -race CI
// matrix — the acceptance gate for the lock-striped engine.
package replica_test

import (
	"context"
	"testing"
	"time"

	"resilientdb/internal/cluster"
	"resilientdb/internal/replica"
	"resilientdb/internal/workload"
)

// TestWorkerLanesStress drives a 4-replica PBFT cluster with W=4 worker
// lanes through the full gauntlet: batched proposals, out-of-order
// commits across lanes, checkpoint rounds (interval 4), and a mid-load
// view change after the primary crashes. Ledger heights must converge
// across the surviving replicas and every chain must validate. Run under
// -race this is the acceptance test for concurrent engine stepping.
func TestWorkerLanesStress(t *testing.T) {
	wl := workload.Default()
	wl.Records = 1000
	wl.ValueSize = 16
	opts := cluster.Options{
		N:                  4,
		Clients:            8,
		BatchSize:          8,
		WorkerThreads:      4,
		CheckpointInterval: 4,
		Workload:           wl,
		ViewTimeout:        150 * time.Millisecond,
		ClientTimeout:      100 * time.Millisecond,
		Seed:               3,
	}
	c, err := cluster.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Stop)

	// Phase 1: load under primary 0 with all four lanes stepping.
	res1 := c.Run(context.Background(), 800*time.Millisecond)
	if res1.Txns == 0 {
		t.Fatalf("no progress with W=4 lanes: %s", res1)
	}

	// Phase 2: crash the primary mid-load; the watchdogs must drive a
	// view change while lanes keep draining in-flight instances.
	c.Crash(0)
	res2 := c.Run(context.Background(), 2500*time.Millisecond)
	if res2.Txns == 0 {
		t.Fatalf("no progress after mid-load primary crash: %s", res2)
	}
	live := func(i int) bool { return i != 0 }
	for i := 1; i < opts.N; i++ {
		if v := c.Replica(i).Stats().View; v == 0 {
			t.Fatalf("replica %d never left view 0", i)
		}
	}

	// Convergence: every surviving ledger reaches the max height seen.
	var target uint64
	for i := 1; i < opts.N; i++ {
		if h := c.Replica(i).Ledger().Height(); h > target {
			target = h
		}
	}
	if target == 0 {
		t.Fatal("no ledger ever grew")
	}
	if got := c.WaitForHeight(target, 10*time.Second, live); got < target {
		t.Fatalf("surviving replicas stuck at height %d < %d", got, target)
	}
	if err := c.VerifyLedgers(live); err != nil {
		t.Fatal(err)
	}

	// The checkpoint machinery must have run under concurrent stepping.
	ck := false
	for i := 1; i < opts.N; i++ {
		if c.Replica(i).Stats().Checkpoints > 0 {
			ck = true
		}
	}
	if !ck {
		t.Fatal("no replica completed a checkpoint round")
	}

	// Lanes must actually have shared the work: a backup's busy time may
	// concentrate when load is light, but the stats must report all four
	// lanes and at least two of them must have stepped the engine.
	s := c.Replica(1).Stats()
	if s.WorkerLanes != 4 || len(s.WorkerLaneBusyNS) != 4 {
		t.Fatalf("backup reports %d lanes (%d busy entries), want 4", s.WorkerLanes, len(s.WorkerLaneBusyNS))
	}
	busy := 0
	for _, ns := range s.WorkerLaneBusyNS {
		if ns > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d of 4 lanes recorded busy time: %v", busy, s.WorkerLaneBusyNS)
	}
}

// TestZyzzyvaIgnoresWorkerThreads runs Zyzzyva with W=4 requested: the
// replicas must fall back to one lane (ordered speculative history) and
// the cluster must stay correct.
func TestZyzzyvaIgnoresWorkerThreads(t *testing.T) {
	wl := workload.Default()
	wl.Records = 1000
	wl.ValueSize = 16
	c, err := cluster.New(cluster.Options{
		N:             4,
		Clients:       4,
		BatchSize:     8,
		WorkerThreads: 4,
		Protocol:      replica.Zyzzyva,
		Workload:      wl,
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Stop)
	res := c.Run(context.Background(), 800*time.Millisecond)
	if res.Txns == 0 {
		t.Fatalf("zyzzyva made no progress: %s", res)
	}
	for i := 0; i < 4; i++ {
		if lanes := c.Replica(i).Stats().WorkerLanes; lanes != 1 {
			t.Fatalf("zyzzyva replica %d runs %d lanes, want 1", i, lanes)
		}
	}
	if err := c.VerifyLedgers(nil); err != nil {
		t.Fatal(err)
	}
}

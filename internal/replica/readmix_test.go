package replica

import (
	"fmt"
	"testing"
	"time"

	"resilientdb/internal/consensus"
	"resilientdb/internal/crypto"
	"resilientdb/internal/ledger"
	"resilientdb/internal/store"
	"resilientdb/internal/transport"
	"resilientdb/internal/types"
	"resilientdb/internal/workload"
)

// readMixBatches builds a deterministic committed-batch history over a
// mixed read–write Zipfian workload (workload A, 50% reads), with one
// request duplicated across batches so dedup skips its reads — and with
// them its result slots — identically under every execution mode.
func readMixBatches(t *testing.T, batches int) []consensus.Execute {
	t.Helper()
	wcfg := workload.Config{
		Records:      shardTestRecords,
		OpsPerTxn:    4,
		ValueSize:    64,
		Distribution: workload.Zipf,
		Seed:         7,
		ReadFraction: 0.5,
	}
	const clients = 4
	wls := make([]*workload.Workload, clients)
	for c := range wls {
		wl, err := workload.New(wcfg, int64(c))
		if err != nil {
			t.Fatal(err)
		}
		wls[c] = wl
	}
	var dup types.ClientRequest
	acts := make([]consensus.Execute, batches)
	for b := 0; b < batches; b++ {
		reqs := make([]types.ClientRequest, 0, clients+1)
		for c := 0; c < clients; c++ {
			reqs = append(reqs, wls[c].NextRequest(types.ClientID(c), uint64(b*2+1), 2))
		}
		if b == 1 {
			dup = reqs[0]
		}
		if b == 2 {
			reqs = append(reqs, dup)
		}
		acts[b] = consensus.Execute{
			Seq:      types.SeqNum(b + 1),
			Digest:   types.BatchDigest(reqs),
			Requests: reqs,
		}
	}
	return acts
}

// newReadMixReplica builds a backup replica plus client endpoints on the
// same in-process network, so the test can capture the per-request
// responses (result digests and read results) execution produces.
func newReadMixReplica(t *testing.T, execThreads, depth, clients int, st store.Store) (*Replica, []transport.Endpoint) {
	t.Helper()
	dir, err := crypto.NewDirectory(crypto.NoSig(), [32]byte{9})
	if err != nil {
		t.Fatal(err)
	}
	net := transport.NewInproc()
	eps := make([]transport.Endpoint, clients)
	for c := 0; c < clients; c++ {
		eps[c] = net.Endpoint(types.ClientNode(types.ClientID(c)), 1, 1<<10)
	}
	r, err := New(Config{
		ID:                 1,
		N:                  4,
		Protocol:           PBFT,
		ExecuteThreads:     execThreads,
		ExecPipelineDepth:  depth,
		CheckpointInterval: 8,
		LedgerMode:         ledger.HashChain,
		Store:              st,
		Directory:          dir,
		Endpoint:           net.Endpoint(types.ReplicaNode(1), 3, 1<<10),
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	t.Cleanup(r.Stop)
	return r, eps
}

// respFingerprint is one response's comparable identity: which request it
// answers, at which sequence, with which result digest and read values.
type respFingerprint struct {
	client    types.ClientID
	clientSeq uint64
	seq       types.SeqNum
}

// collectResponses drains want client responses from the endpoints and
// renders each into a canonical string covering the result digest and
// every read result byte.
func collectResponses(t *testing.T, eps []transport.Endpoint, want int) map[respFingerprint]string {
	t.Helper()
	merged := make(chan *types.Envelope, 4*want)
	for _, ep := range eps {
		go func(inbox <-chan *types.Envelope) {
			for env := range inbox {
				merged <- env
			}
		}(ep.Inbox(0))
	}
	got := make(map[respFingerprint]string, want)
	deadline := time.After(5 * time.Second)
	for len(got) < want {
		select {
		case env := <-merged:
			if env.Type != types.MsgClientResponse {
				continue
			}
			msg, err := types.DecodeBody(env.Type, env.Body)
			if err != nil {
				t.Fatal(err)
			}
			resp := msg.(*types.ClientResponse)
			key := respFingerprint{client: resp.Client, clientSeq: resp.ClientSeq, seq: resp.Seq}
			val := fmt.Sprintf("result=%x reads=", resp.Result)
			for _, rr := range resp.ReadResults {
				if rr.Scan {
					val += "[scan"
					for _, row := range rr.Rows {
						val += fmt.Sprintf("(%d,%x)", row.Key, row.Value)
					}
					val += "]"
					continue
				}
				val += fmt.Sprintf("(%v,%x)", rr.Found, rr.Value)
			}
			if prev, ok := got[key]; ok && prev != val {
				t.Fatalf("replica answered %v twice with different results:\n%s\n%s", key, prev, val)
			}
			got[key] = val
		case <-deadline:
			t.Fatalf("collected %d/%d responses before timeout", len(got), want)
		}
	}
	return got
}

// TestLocalReadClientBinding: a ReadRequest whose Client field does not
// match the authenticated sender must be dropped as an auth failure. The
// authenticated ReadReply goes to the *claimed* client and ClientSeq
// values are guessable, so without the binding a malicious client could
// plant answers for attacker-chosen keys in a victim's pending read.
func TestLocalReadClientBinding(t *testing.T) {
	mem := store.NewMemStore(1 << 10)
	if err := mem.Put(7, []byte("v7")); err != nil {
		t.Fatal(err)
	}
	r, eps := newReadMixReplica(t, 1, 1, 2, mem)

	send := func(from types.ClientID, req *types.ReadRequest) {
		env := &types.Envelope{
			From: types.ClientNode(from),
			To:   types.ReplicaNode(1),
			Type: types.MsgReadRequest,
			Body: types.MarshalBody(req),
		}
		if err := eps[int(from)].Send(env); err != nil {
			t.Fatal(err)
		}
	}

	// Client 1 claims to be client 0; the replica must not answer.
	send(1, &types.ReadRequest{Client: 0, ClientSeq: 9, Keys: []uint64{7}})
	// A well-formed request from the same sender is still served — the
	// reply proves the read lane is alive and the forged request ahead of
	// it in the inbox was discarded, not deferred.
	send(1, &types.ReadRequest{Client: 1, ClientSeq: 10, Keys: []uint64{7}})

	deadline := time.After(5 * time.Second)
	for {
		select {
		case env := <-eps[1].Inbox(0):
			if env.Type != types.MsgReadReply {
				continue
			}
			msg, err := types.DecodeBody(env.Type, env.Body)
			if err != nil {
				t.Fatal(err)
			}
			reply := msg.(*types.ReadReply)
			if reply.ClientSeq != 10 {
				t.Fatalf("reply answers ClientSeq %d, want 10", reply.ClientSeq)
			}
			if len(reply.Results) != 1 || !reply.Results[0].Found || string(reply.Results[0].Value) != "v7" {
				t.Fatalf("bad read results: %+v", reply.Results)
			}
			s := r.Stats()
			if s.AuthFailures == 0 {
				t.Fatal("forged ReadRequest not counted as an auth failure")
			}
			if s.LocalReads != 1 {
				t.Fatalf("LocalReads = %d, want 1 (the forged request must not be served)", s.LocalReads)
			}
			// The victim must have received nothing.
			select {
			case env := <-eps[0].Inbox(0):
				t.Fatalf("victim client received %v", env.Type)
			default:
			}
			return
		case <-deadline:
			t.Fatal("legitimate ReadRequest never answered")
		}
	}
}

// TestLocalReadStalenessBound: a ReadRequest whose MinSeq exceeds the
// replica's last-retired sequence must come back as a refusal — a reply
// with no results whose Seq stamp reports how far the replica actually
// got — while a request within the bound is served, scans included.
func TestLocalReadStalenessBound(t *testing.T) {
	mem := store.NewMemStore(1 << 10)
	for k := uint64(5); k < 10; k++ {
		if err := mem.Put(k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	_, eps := newReadMixReplica(t, 1, 1, 1, mem)

	send := func(cseq uint64, minSeq types.SeqNum) {
		req := &types.ReadRequest{
			Client: 0, ClientSeq: cseq,
			Keys:   []uint64{7},
			MinSeq: minSeq,
			Scans:  []types.Op{{Kind: types.OpScan, Key: 5, EndKey: 9, Limit: 3}},
		}
		env := &types.Envelope{
			From: types.ClientNode(0),
			To:   types.ReplicaNode(1),
			Type: types.MsgReadRequest,
			Body: types.MarshalBody(req),
		}
		if err := eps[0].Send(env); err != nil {
			t.Fatal(err)
		}
	}
	recv := func() *types.ReadReply {
		deadline := time.After(5 * time.Second)
		for {
			select {
			case env := <-eps[0].Inbox(0):
				if env.Type != types.MsgReadReply {
					continue
				}
				msg, err := types.DecodeBody(env.Type, env.Body)
				if err != nil {
					t.Fatal(err)
				}
				return msg.(*types.ReadReply)
			case <-deadline:
				t.Fatal("no ReadReply before timeout")
			}
		}
	}

	// Nothing retired yet: a bound of 3 must be refused with Seq 0.
	send(1, 3)
	reply := recv()
	if reply.ClientSeq != 1 || len(reply.Results) != 0 {
		t.Fatalf("stale request was served: %+v", reply)
	}
	if reply.Seq != 0 {
		t.Fatalf("refusal stamps Seq %d, want 0", reply.Seq)
	}

	// Within the bound: both the point read and the scan are answered.
	send(2, 0)
	reply = recv()
	if reply.ClientSeq != 2 || len(reply.Results) != 2 {
		t.Fatalf("in-bound request not served: %+v", reply)
	}
	if !reply.Results[0].Found || len(reply.Results[0].Value) != 1 || reply.Results[0].Value[0] != 7 {
		t.Fatalf("bad point result: %+v", reply.Results[0])
	}
	sc := reply.Results[1]
	if !sc.Scan || len(sc.Rows) != 3 || sc.Rows[0].Key != 5 || sc.Rows[2].Key != 7 {
		t.Fatalf("bad scan result: %+v", sc)
	}
}

// TestReadMixDeterminism is the acceptance check for conflict-ordered
// read–write execution: a mixed Zipfian workload run under E=4 with
// pipeline depth 3 over a sharded group-commit DiskStore must produce
// ledger digests, checkpoint chains, store state, AND per-request read
// results byte-identical to E=1 serial execution over a MemStore. The
// per-shard FIFO plus write-flush-before-read is what makes a read
// observe exactly the writes sequenced before it.
func TestReadMixDeterminism(t *testing.T) {
	const batches = 32
	const clients = 4
	acts := readMixBatches(t, batches)
	// 4 requests per batch plus the one duplicate re-delivery.
	wantResponses := batches*clients + 1

	// Preload half the table so reads hit both existing and missing keys.
	preload := func(st store.Store) {
		for k := uint64(0); k < shardTestRecords; k += 2 {
			if err := st.Put(k, []byte{byte(k), byte(k >> 8)}); err != nil {
				t.Fatal(err)
			}
		}
	}

	mem := store.NewMemStore(shardTestRecords)
	preload(mem)
	serial, serialEPs := newReadMixReplica(t, 1, 1, clients, mem)

	disk, err := store.OpenShardedDisk(t.TempDir(), store.ShardedDiskOptions{
		Shards:     4,
		SyncLinger: 50 * time.Microsecond,
		ReadIndex:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	preload(disk)
	pipelined, pipelinedEPs := newReadMixReplica(t, 4, 3, clients, disk)

	for _, act := range acts {
		serial.execIn.Offer(uint64(act.Seq), execItem{act: act})
		pipelined.execIn.Offer(uint64(act.Seq), execItem{act: act})
	}
	waitBatches(t, serial, batches)
	waitBatches(t, pipelined, batches)

	if got, want := pipelined.Ledger().StateDigest(), serial.Ledger().StateDigest(); got != want {
		t.Fatalf("ledger head digest diverged: pipelined %x vs serial %x", got[:8], want[:8])
	}
	if err := ledger.VerifyChainEquality(serial.Ledger(), pipelined.Ledger()); err != nil {
		t.Fatalf("chains diverged: %v", err)
	}
	ss, ps := serial.Stats(), pipelined.Stats()
	if ss.TxnsExecuted != ps.TxnsExecuted {
		t.Fatalf("txns executed diverged: serial %d vs pipelined %d", ss.TxnsExecuted, ps.TxnsExecuted)
	}
	if ss.ReadsExecuted == 0 {
		t.Fatal("mixed workload executed no reads")
	}
	if ss.ReadsExecuted != ps.ReadsExecuted {
		t.Fatalf("reads executed diverged: serial %d vs pipelined %d", ss.ReadsExecuted, ps.ReadsExecuted)
	}
	if got, want := storeDigest(t, pipelined.Store()), storeDigest(t, serial.Store()); got != want {
		t.Fatalf("store state diverged: pipelined %x vs serial %x", got[:8], want[:8])
	}

	// The decisive check: every request's response — result digest and
	// read values — must match between the two execution modes.
	serialResp := collectResponses(t, serialEPs, wantResponses)
	pipelinedResp := collectResponses(t, pipelinedEPs, wantResponses)
	if len(serialResp) != len(pipelinedResp) {
		t.Fatalf("response counts diverged: serial %d vs pipelined %d", len(serialResp), len(pipelinedResp))
	}
	withReads := 0
	for key, sv := range serialResp {
		pv, ok := pipelinedResp[key]
		if !ok {
			t.Fatalf("pipelined replica never answered %+v", key)
		}
		if sv != pv {
			t.Fatalf("response %+v diverged:\nserial:    %s\npipelined: %s", key, sv, pv)
		}
		if len(sv) > len("result=")+64+len(" reads=") {
			withReads++
		}
	}
	if withReads == 0 {
		t.Fatal("no response carried read results")
	}
}

package replica

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"resilientdb/internal/consensus"
	"resilientdb/internal/crypto"
	"resilientdb/internal/ledger"
	"resilientdb/internal/store"
	"resilientdb/internal/transport"
	"resilientdb/internal/types"
	"resilientdb/internal/workload"
)

const shardTestRecords = 4096

// newShardReplica builds and starts a backup replica with E execution
// shards whose execute stage can be driven directly through execIn.
func newShardReplica(t *testing.T, execThreads int) *Replica {
	t.Helper()
	return newExecReplica(t, execThreads, 1, store.NewMemStore(shardTestRecords))
}

// newExecReplica is the general form: E execution shards, a cross-batch
// pipelining depth, and an arbitrary store.
func newExecReplica(t *testing.T, execThreads, depth int, st store.Store) *Replica {
	t.Helper()
	dir, err := crypto.NewDirectory(crypto.NoSig(), [32]byte{9})
	if err != nil {
		t.Fatal(err)
	}
	net := transport.NewInproc()
	r, err := New(Config{
		ID:                 1, // backup: the batch stage stays idle
		N:                  4,
		Protocol:           PBFT,
		ExecuteThreads:     execThreads,
		ExecPipelineDepth:  depth,
		CheckpointInterval: 8, // several checkpoints over a 32-batch run
		LedgerMode:         ledger.HashChain,
		Store:              st,
		Directory:          dir,
		Endpoint:           net.Endpoint(types.ReplicaNode(1), 3, 1<<10),
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	t.Cleanup(r.Stop)
	return r
}

// shardTestBatches builds a deterministic committed-batch history: several
// Zipfian clients with multi-op transactions, plus one request duplicated
// across batches so the dedup path runs under both execution modes.
func shardTestBatches(t *testing.T, batches int) []consensus.Execute {
	t.Helper()
	wcfg := workload.Config{
		Records:      shardTestRecords,
		OpsPerTxn:    4,
		ValueSize:    64,
		Distribution: workload.Zipf,
		Seed:         7,
	}
	const clients = 4
	wls := make([]*workload.Workload, clients)
	for c := range wls {
		wl, err := workload.New(wcfg, int64(c))
		if err != nil {
			t.Fatal(err)
		}
		wls[c] = wl
	}
	var dup types.ClientRequest
	acts := make([]consensus.Execute, batches)
	for b := 0; b < batches; b++ {
		reqs := make([]types.ClientRequest, 0, clients+1)
		for c := 0; c < clients; c++ {
			reqs = append(reqs, wls[c].NextRequest(types.ClientID(c), uint64(b*2+1), 2))
		}
		if b == 1 {
			dup = reqs[0]
		}
		if b == 2 {
			// Re-delivered request (e.g. re-proposed after a view change):
			// execution must skip it, identically under every E.
			reqs = append(reqs, dup)
		}
		acts[b] = consensus.Execute{
			Seq:      types.SeqNum(b + 1),
			Digest:   types.BatchDigest(reqs),
			Requests: reqs,
		}
	}
	return acts
}

func waitBatches(t *testing.T, r *Replica, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if r.Stats().BatchesExecuted >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("executed %d batches, want %d", r.Stats().BatchesExecuted, want)
}

// storeDigest hashes every live record in key order; byte-identical store
// state yields identical digests.
func storeDigest(t *testing.T, st store.Store) types.Digest {
	t.Helper()
	var buf bytes.Buffer
	var hdr [12]byte
	for k := uint64(0); k < shardTestRecords; k++ {
		v, err := st.Get(k)
		if errors.Is(err, store.ErrNotFound) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		binary.BigEndian.PutUint64(hdr[:8], k)
		binary.BigEndian.PutUint32(hdr[8:], uint32(len(v)))
		buf.Write(hdr[:])
		buf.Write(v)
	}
	return crypto.Hash256(buf.Bytes())
}

// TestExecShardDeterminism is the acceptance check for write-set
// partitioned execution: the same committed batches produce byte-identical
// ledger digests and store state under E=1 (serial) and E=4 (sharded),
// and under a Zipfian write load every shard does work.
func TestExecShardDeterminism(t *testing.T) {
	const batches = 32
	acts := shardTestBatches(t, batches)

	serial := newShardReplica(t, 1)
	sharded := newShardReplica(t, 4)
	for _, act := range acts {
		serial.execIn.Offer(uint64(act.Seq), execItem{act: act})
		sharded.execIn.Offer(uint64(act.Seq), execItem{act: act})
	}
	waitBatches(t, serial, batches)
	waitBatches(t, sharded, batches)

	if got, want := sharded.Ledger().StateDigest(), serial.Ledger().StateDigest(); got != want {
		t.Fatalf("ledger head digest diverged: E=4 %x vs E=1 %x", got[:8], want[:8])
	}
	ss, sh := serial.Stats(), sharded.Stats()
	if ss.TxnsExecuted != sh.TxnsExecuted {
		t.Fatalf("txns executed diverged: E=1 %d vs E=4 %d", ss.TxnsExecuted, sh.TxnsExecuted)
	}
	if got, want := storeDigest(t, sharded.Store()), storeDigest(t, serial.Store()); got != want {
		t.Fatalf("store state diverged: E=4 %x vs E=1 %x", got[:8], want[:8])
	}

	if ss.ExecShards != 0 || len(ss.ExecShardBusyNS) != 0 {
		t.Fatalf("serial replica reports shards: %d (%v)", ss.ExecShards, ss.ExecShardBusyNS)
	}
	if sh.ExecShards != 4 || len(sh.ExecShardBusyNS) != 4 {
		t.Fatalf("sharded replica reports %d shards (%v)", sh.ExecShards, sh.ExecShardBusyNS)
	}
	for i, ns := range sh.ExecShardBusyNS {
		if ns == 0 {
			t.Fatalf("shard %d never did work: %v", i, sh.ExecShardBusyNS)
		}
	}
}

// TestExecPipelineDeterminism is the acceptance check for cross-batch
// pipelined execution over the durable store: E=4 with pipeline depth 3
// streaming its partitions into a sharded group-commit DiskStore must
// produce ledger and checkpoint digests and store contents byte-identical
// to E=1 serial execution over a MemStore. Per-shard FIFO ordering (the
// conflict mechanism) plus in-order retirement is what makes this hold.
func TestExecPipelineDeterminism(t *testing.T) {
	const batches = 32
	acts := shardTestBatches(t, batches)

	serial := newExecReplica(t, 1, 1, store.NewMemStore(shardTestRecords))
	disk, err := store.OpenShardedDisk(t.TempDir(), store.ShardedDiskOptions{
		Shards:     4,
		SyncLinger: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	pipelined := newExecReplica(t, 4, 3, disk)

	for _, act := range acts {
		serial.execIn.Offer(uint64(act.Seq), execItem{act: act})
	}
	// Feed the pipelined replica in two halves with a full log compaction
	// between them, while execution is live: a mid-run rewrite of the
	// durable store must be invisible to the ledger, the checkpoint
	// digests, and the final store state.
	for _, act := range acts[:batches/2] {
		pipelined.execIn.Offer(uint64(act.Seq), execItem{act: act})
	}
	waitBatches(t, pipelined, batches/2)
	if err := disk.Compact(); err != nil {
		t.Fatal(err)
	}
	for _, act := range acts[batches/2:] {
		pipelined.execIn.Offer(uint64(act.Seq), execItem{act: act})
	}
	waitBatches(t, serial, batches)
	waitBatches(t, pipelined, batches)
	if cs := disk.CompactStats(); cs.Compactions == 0 {
		t.Fatal("the sharded store never compacted mid-run")
	}

	if got, want := pipelined.Ledger().StateDigest(), serial.Ledger().StateDigest(); got != want {
		t.Fatalf("ledger head digest diverged: pipelined %x vs serial %x", got[:8], want[:8])
	}
	// Checkpoint digests: with interval 8 both replicas reported executions
	// at the same sequence boundaries; compare the full chains height by
	// height so an out-of-order retirement cannot hide in the head digest.
	if err := ledger.VerifyChainEquality(serial.Ledger(), pipelined.Ledger()); err != nil {
		t.Fatalf("chains diverged: %v", err)
	}
	ss, ps := serial.Stats(), pipelined.Stats()
	if ss.TxnsExecuted != ps.TxnsExecuted {
		t.Fatalf("txns executed diverged: serial %d vs pipelined %d", ss.TxnsExecuted, ps.TxnsExecuted)
	}
	if ps.ExecPipelineDepth != 3 {
		t.Fatalf("pipelined replica reports depth %d, want 3", ps.ExecPipelineDepth)
	}
	if ss.ExecPipelineDepth != 1 {
		t.Fatalf("serial replica reports depth %d, want 1", ss.ExecPipelineDepth)
	}
	if ps.StoreFsyncs == 0 {
		t.Fatal("group-commit store never fsynced under the pipelined run")
	}
	if got, want := storeDigest(t, pipelined.Store()), storeDigest(t, serial.Store()); got != want {
		t.Fatalf("store state diverged: pipelined sharded disk %x vs serial mem %x", got[:8], want[:8])
	}
}

// TestExecShardDiskStoreFallback: a store without the batched apply path
// (DiskStore stays serialized, the Section 5.7 contrast) must still
// execute correctly through the shard workers' per-op fallback.
func TestExecShardDiskStoreFallback(t *testing.T) {
	dir, err := crypto.NewDirectory(crypto.NoSig(), [32]byte{9})
	if err != nil {
		t.Fatal(err)
	}
	disk, err := store.OpenDisk(t.TempDir()+"/records.log", store.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	net := transport.NewInproc()
	r, err := New(Config{
		ID:             1,
		N:              4,
		Protocol:       PBFT,
		ExecuteThreads: 4,
		LedgerMode:     ledger.HashChain,
		Store:          disk,
		Directory:      dir,
		Endpoint:       net.Endpoint(types.ReplicaNode(1), 3, 1<<10),
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	t.Cleanup(r.Stop)

	const batches = 4
	acts := shardTestBatches(t, batches)
	for _, act := range acts {
		r.execIn.Offer(uint64(act.Seq), execItem{act: act})
	}
	waitBatches(t, r, batches)

	serial := newShardReplica(t, 1)
	for _, act := range acts {
		serial.execIn.Offer(uint64(act.Seq), execItem{act: act})
	}
	waitBatches(t, serial, batches)
	if got, want := storeDigest(t, disk), storeDigest(t, serial.Store()); got != want {
		t.Fatalf("disk-backed sharded state diverged: %x vs %x", got[:8], want[:8])
	}
}

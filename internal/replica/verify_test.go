package replica

import (
	"testing"
	"time"

	"resilientdb/internal/crypto"
	"resilientdb/internal/transport"
	"resilientdb/internal/types"
)

// TestVerifyStageRejectsForgedEnvelopes runs a replica with a parallel
// verify stage and checks that forged peer traffic dies there — counted
// as an auth failure, never reaching the worker — while genuinely
// authenticated traffic passes.
func TestVerifyStageRejectsForgedEnvelopes(t *testing.T) {
	dir, err := crypto.NewDirectory(crypto.Recommended(), [32]byte{3})
	if err != nil {
		t.Fatal(err)
	}
	net := transport.NewInproc()
	ep := net.Endpoint(types.ReplicaNode(0), 3, 64)
	r, err := New(Config{
		ID:            0,
		N:             4,
		Protocol:      PBFT,
		VerifyThreads: 2,
		Directory:     dir,
		Endpoint:      ep,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	defer r.Stop()

	peerAuth := dir.NodeAuth(types.ReplicaNode(1))
	body := types.MarshalBody(&types.Prepare{View: 0, Seq: 1})
	mac, err := peerAuth.Sign(types.ReplicaNode(0), body)
	if err != nil {
		t.Fatal(err)
	}
	sender := net.Endpoint(types.ReplicaNode(1), 1, 16)
	defer sender.Close()

	forged := append([]byte(nil), mac...)
	forged[0] ^= 0xFF
	if err := sender.Send(&types.Envelope{
		From: types.ReplicaNode(1), To: types.ReplicaNode(0),
		Type: types.MsgPrepare, Body: body, Auth: forged,
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return r.Stats().AuthFailures == 1 }, "forged envelope not rejected")

	if err := sender.Send(&types.Envelope{
		From: types.ReplicaNode(1), To: types.ReplicaNode(0),
		Type: types.MsgPrepare, Body: body, Auth: mac,
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return r.Stats().MsgsIn == 2 }, "valid envelope never arrived")
	// Give the verify stage time to (wrongly) reject it before asserting
	// the failure count did not move.
	time.Sleep(50 * time.Millisecond)
	if got := r.Stats().AuthFailures; got != 1 {
		t.Fatalf("auth failures = %d after a valid envelope, want 1", got)
	}
}

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

package replica

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"resilientdb/internal/consensus"
	"resilientdb/internal/ledger"
	"resilientdb/internal/store"
	"resilientdb/internal/types"
	"resilientdb/internal/workload"
)

// rywBase is the key region the hand-crafted read-your-writes requests
// use. It sits far above the workload's record space so no randomized
// transaction can disturb the values these requests observe.
const rywBase = uint64(1) << 20

// scanTxnBatches builds a deterministic committed-batch history over a
// mixed write/read/scan Zipfian workload, plus one request duplicated
// across batches (dedup must skip it identically under every E) and two
// hand-crafted read-your-writes requests whose transactions write, read,
// and scan the same keys.
func scanTxnBatches(t *testing.T, batches int) []consensus.Execute {
	t.Helper()
	wcfg := workload.Config{
		Records:      shardTestRecords,
		OpsPerTxn:    4,
		ValueSize:    64,
		Distribution: workload.Zipf,
		Seed:         7,
		ReadFraction: 0.3,
		ScanFraction: 0.35,
		ScanLength:   24,
	}
	const clients = 4
	wls := make([]*workload.Workload, clients)
	for c := range wls {
		wl, err := workload.New(wcfg, int64(c))
		if err != nil {
			t.Fatal(err)
		}
		wls[c] = wl
	}
	var dup types.ClientRequest
	acts := make([]consensus.Execute, batches)
	for b := 0; b < batches; b++ {
		reqs := make([]types.ClientRequest, 0, clients+1)
		for c := 0; c < clients; c++ {
			reqs = append(reqs, wls[c].NextRequest(types.ClientID(c), uint64(b*2+1), 2))
		}
		switch b {
		case 1:
			dup = reqs[0]
		case 2:
			reqs = append(reqs, dup)
		case 3:
			// Intra-transaction read-your-writes: a write followed by a
			// read and a scan of the same key inside one transaction must
			// observe that write; a write sequenced after the scan must
			// not appear in it. The second transaction then sees the
			// first's full write set.
			reqs = append(reqs, types.ClientRequest{
				Client:   clients,
				FirstSeq: 1,
				Txns: []types.Transaction{
					{Client: clients, ClientSeq: 1, Ops: []types.Op{
						{Kind: types.OpWrite, Key: rywBase, Value: []byte("ryw-a")},
						{Kind: types.OpRead, Key: rywBase},
						{Kind: types.OpScan, Key: rywBase, EndKey: rywBase + 4, Limit: 8},
						{Kind: types.OpWrite, Key: rywBase + 2, Value: []byte("ryw-b")},
					}},
					{Client: clients, ClientSeq: 2, Ops: []types.Op{
						{Kind: types.OpScan, Key: rywBase, EndKey: rywBase + 4, Limit: 8},
						{Kind: types.OpRead, Key: rywBase + 2},
					}},
				},
			})
		case 5:
			// Limit truncation over the transaction's own writes: six
			// fresh keys, then a scan capped at three must return exactly
			// the three lowest.
			ops := make([]types.Op, 0, 7)
			for i := uint64(0); i < 6; i++ {
				ops = append(ops, types.Op{
					Kind: types.OpWrite, Key: rywBase + 10 + i,
					Value: []byte{byte('A' + i)},
				})
			}
			ops = append(ops, types.Op{
				Kind: types.OpScan, Key: rywBase + 10, EndKey: rywBase + 30, Limit: 3,
			})
			reqs = append(reqs, types.ClientRequest{
				Client:   clients,
				FirstSeq: 3,
				Txns:     []types.Transaction{{Client: clients, ClientSeq: 3, Ops: ops}},
			})
		}
		acts[b] = consensus.Execute{
			Seq:      types.SeqNum(b + 1),
			Digest:   types.BatchDigest(reqs),
			Requests: reqs,
		}
	}
	return acts
}

// TestScanDeterminism is the acceptance check for general transactions:
// a randomized mixed write/read/scan workload — plus hand-crafted
// intra-transaction read-your-writes cases — run under E=4 with pipeline
// depth 3 over a sharded group-commit DiskStore with the ordered read
// index must produce ledger digests, checkpoint chains, store state, AND
// per-request responses (every scan row included) byte-identical to E=1
// serial execution over a MemStore. Scans fan out to every shard behind
// the write-flush barrier and the coordinator merges the disjoint sorted
// fragments at retirement, so the merged rows equal the serial scan.
func TestScanDeterminism(t *testing.T) {
	const batches = 32
	const clients = 4
	acts := scanTxnBatches(t, batches)
	// One response per request: 4 clients per batch, plus the duplicate
	// re-delivery and the two read-your-writes requests.
	wantResponses := batches*clients + 3

	// Preload half the table so reads and scans hit both existing and
	// missing keys.
	preload := func(st store.Store) {
		for k := uint64(0); k < shardTestRecords; k += 2 {
			if err := st.Put(k, []byte{byte(k), byte(k >> 8)}); err != nil {
				t.Fatal(err)
			}
		}
	}

	mem := store.NewMemStore(shardTestRecords)
	preload(mem)
	serial, serialEPs := newReadMixReplica(t, 1, 1, clients+1, mem)

	disk, err := store.OpenShardedDisk(t.TempDir(), store.ShardedDiskOptions{
		Shards:     4,
		SyncLinger: 50 * time.Microsecond,
		ReadIndex:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	preload(disk)
	pipelined, pipelinedEPs := newReadMixReplica(t, 4, 3, clients+1, disk)

	for _, act := range acts {
		serial.execIn.Offer(uint64(act.Seq), execItem{act: act})
		pipelined.execIn.Offer(uint64(act.Seq), execItem{act: act})
	}
	waitBatches(t, serial, batches)
	waitBatches(t, pipelined, batches)

	if got, want := pipelined.Ledger().StateDigest(), serial.Ledger().StateDigest(); got != want {
		t.Fatalf("ledger head digest diverged: pipelined %x vs serial %x", got[:8], want[:8])
	}
	if err := ledger.VerifyChainEquality(serial.Ledger(), pipelined.Ledger()); err != nil {
		t.Fatalf("chains diverged: %v", err)
	}
	ss, ps := serial.Stats(), pipelined.Stats()
	if ss.TxnsExecuted != ps.TxnsExecuted {
		t.Fatalf("txns executed diverged: serial %d vs pipelined %d", ss.TxnsExecuted, ps.TxnsExecuted)
	}
	if ss.ReadsExecuted == 0 {
		t.Fatal("mixed workload executed no reads or scans")
	}
	if ss.ReadsExecuted != ps.ReadsExecuted {
		t.Fatalf("reads executed diverged: serial %d vs pipelined %d", ss.ReadsExecuted, ps.ReadsExecuted)
	}
	if got, want := storeDigest(t, pipelined.Store()), storeDigest(t, serial.Store()); got != want {
		t.Fatalf("store state diverged: pipelined %x vs serial %x", got[:8], want[:8])
	}

	// The decisive check: every request's response — result digest, read
	// values, and every scan row — must match between the execution modes.
	serialResp := collectResponses(t, serialEPs, wantResponses)
	pipelinedResp := collectResponses(t, pipelinedEPs, wantResponses)
	if len(serialResp) != len(pipelinedResp) {
		t.Fatalf("response counts diverged: serial %d vs pipelined %d", len(serialResp), len(pipelinedResp))
	}
	withScans := 0
	for key, sv := range serialResp {
		pv, ok := pipelinedResp[key]
		if !ok {
			t.Fatalf("pipelined replica never answered %+v", key)
		}
		if sv != pv {
			t.Fatalf("response %+v diverged:\nserial:    %s\npipelined: %s", key, sv, pv)
		}
		if strings.Contains(sv, "[scan") {
			withScans++
		}
	}
	if withScans < batches {
		t.Fatalf("only %d responses carried scan results; the scan mix should produce far more", withScans)
	}

	// Pin the read-your-writes semantics on the serial responses (the
	// equality above extends them to the pipelined replica). Transaction 1:
	// the read and the scan both observe the write that precedes them, and
	// not the write that follows the scan. Transaction 2: the scan and the
	// read observe transaction 1's full write set.
	rywKey := respFingerprint{client: clients, clientSeq: 1, seq: 4}
	ryw, ok := serialResp[rywKey]
	if !ok {
		t.Fatalf("no response for the read-your-writes request %+v", rywKey)
	}
	wantReads := fmt.Sprintf("reads=(true,%x)[scan(%d,%x)][scan(%d,%x)(%d,%x)](true,%x)",
		"ryw-a", rywBase, "ryw-a",
		rywBase, "ryw-a", rywBase+2, "ryw-b",
		"ryw-b")
	if !strings.Contains(ryw, wantReads) {
		t.Fatalf("read-your-writes results wrong:\ngot  %s\nwant ...%s", ryw, wantReads)
	}

	limKey := respFingerprint{client: clients, clientSeq: 3, seq: 6}
	lim, ok := serialResp[limKey]
	if !ok {
		t.Fatalf("no response for the limit-truncation request %+v", limKey)
	}
	wantLim := fmt.Sprintf("reads=[scan(%d,%x)(%d,%x)(%d,%x)]",
		rywBase+10, "A", rywBase+11, "B", rywBase+12, "C")
	if !strings.Contains(lim, wantLim) {
		t.Fatalf("limit-truncated scan wrong:\ngot  %s\nwant ...%s", lim, wantLim)
	}
}

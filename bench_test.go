package resilientdb_test

import (
	"sync/atomic"
	"testing"
	"time"

	"resilientdb/internal/bench"
	"resilientdb/internal/transport"
	"resilientdb/internal/types"
)

// Each benchmark regenerates one table/figure of the paper's evaluation
// (Section 5) through the experiment suite at small scale and reports the
// figure's headline metrics. Run the resdb-bench command with
// -scale paper for full-scale populations and rendered tables:
//
//	go run ./cmd/resdb-bench -experiment all -scale paper
//
// Shapes — who wins, by what factor, where crossovers fall — are the
// reproduction target; see EXPERIMENTS.md for paper-vs-measured numbers.

// runFigure executes an experiment once per benchmark iteration and
// reports the selected metrics.
func runFigure(b *testing.B, id string, metrics map[string]string) {
	b.Helper()
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var out bench.Outcome
	var err error
	for i := 0; i < b.N; i++ {
		out, err = e.Run(bench.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
	}
	for key, unit := range metrics {
		if v, ok := out.Metrics[key]; ok {
			b.ReportMetric(v, unit)
		}
	}
}

// BenchmarkFig01ScalabilityHeadline regenerates Figure 1: ResilientDB's
// three-phase PBFT on the full pipeline vs single-phase Zyzzyva on a
// protocol-centric design. Paper: up to 175K txn/s and +79% for PBFT.
func BenchmarkFig01ScalabilityHeadline(b *testing.B) {
	runFigure(b, "fig1", map[string]string{
		"pbft_n16_tps":      "pbft_txn/s",
		"zyz_pc_n16_tps":    "zyz_txn/s",
		"advantage_pct_n16": "adv_%",
	})
}

// BenchmarkFig07UpperBound regenerates Figure 7: the no-consensus
// ceiling. Paper: up to ~500K txn/s.
func BenchmarkFig07UpperBound(b *testing.B) {
	runFigure(b, "fig7", map[string]string{
		"noexec_c80000_tps": "noexec_txn/s",
		"exec_c80000_tps":   "exec_txn/s",
	})
}

// BenchmarkFig08ThreadsPipeline regenerates Figure 8: every thread
// configuration × replica count. Paper: PBFT gains 1.39× from 0B0E to
// 2B1E; Zyzzyva 1.72×.
func BenchmarkFig08ThreadsPipeline(b *testing.B) {
	runFigure(b, "fig8", map[string]string{
		"pbft_pipeline_gain_x": "pbft_gain_x",
		"zyz_pipeline_gain_x":  "zyz_gain_x",
	})
}

// BenchmarkFig09Saturation regenerates Figure 9: per-thread saturation.
// Paper: worker saturates under 0B0E; batch-threads dominate under 2B1E.
func BenchmarkFig09Saturation(b *testing.B) {
	runFigure(b, "fig9", map[string]string{
		"pbft_0B0E_primary_worker_sat": "mono_worker_sat",
		"pbft_2B1E_primary_batch1_sat": "pipe_batch_sat",
	})
}

// BenchmarkFig10Batching regenerates Figure 10. Paper: batching is worth
// up to 66×, peaking near batch=1000.
func BenchmarkFig10Batching(b *testing.B) {
	runFigure(b, "fig10", map[string]string{
		"batching_gain_x": "gain_x",
		"batch100_tps":    "b100_txn/s",
	})
}

// BenchmarkFig11MultiOperation regenerates Figure 11. Paper: txn/s falls
// ~93% from 1 to 50 ops; extra batch-threads recover up to 66%.
func BenchmarkFig11MultiOperation(b *testing.B) {
	runFigure(b, "fig11", map[string]string{
		"ops1_2B_tps":  "ops1_txn/s",
		"ops50_2B_tps": "ops50_txn/s",
		"ops50_5B_tps": "ops50_5B_txn/s",
	})
}

// BenchmarkFig12MessageSize regenerates Figure 12. Paper: 8KB→64KB
// pre-prepares cost ~52% throughput.
func BenchmarkFig12MessageSize(b *testing.B) {
	runFigure(b, "fig12", map[string]string{
		"size_tput_drop_pct": "drop_%",
	})
}

// BenchmarkFig13Signatures regenerates Figure 13. Paper: crypto ≥49%
// throughput cost; clever schemes beat RSA by ~103×.
func BenchmarkFig13Signatures(b *testing.B) {
	runFigure(b, "fig13", map[string]string{
		"crypto_cost_pct": "crypto_%",
		"scheme_gain_x":   "vs_rsa_x",
	})
}

// BenchmarkFig14Storage regenerates Figure 14. Paper: off-memory storage
// costs ~94% throughput and ~24× latency.
func BenchmarkFig14Storage(b *testing.B) {
	runFigure(b, "fig14", map[string]string{
		"storage_drop_pct":  "drop_%",
		"storage_latency_x": "lat_x",
	})
}

// BenchmarkFig15Clients regenerates Figure 15. Paper: throughput
// saturates near 32K clients; latency grows ~5×.
func BenchmarkFig15Clients(b *testing.B) {
	runFigure(b, "fig15", map[string]string{
		"latency_growth_x": "lat_growth_x",
	})
}

// BenchmarkFig16Cores regenerates Figure 16. Paper: 8 cores are worth
// 8.92× over 1 core.
func BenchmarkFig16Cores(b *testing.B) {
	runFigure(b, "fig16", map[string]string{
		"core_scaling_x": "scaling_x",
	})
}

// BenchmarkFig17Failures regenerates Figure 17. Paper: PBFT dips
// slightly under crashes; Zyzzyva loses ~39×.
func BenchmarkFig17Failures(b *testing.B) {
	runFigure(b, "fig17", map[string]string{
		"zyz_collapse_x": "zyz_collapse_x",
		"pbft_f5_ratio":  "pbft_f5_ratio",
	})
}

// BenchmarkAblationOutOfOrder measures Section 4.5's claim that
// out-of-order consensus processing is worth ~60% throughput.
func BenchmarkAblationOutOfOrder(b *testing.B) {
	runFigure(b, "ablation-ooo", map[string]string{
		"ooo_gain_pct": "gain_%",
	})
}

// BenchmarkAblationDecoupledExecution measures the Section 3 claim that
// decoupling execution from ordering is worth ~9.5%.
func BenchmarkAblationDecoupledExecution(b *testing.B) {
	runFigure(b, "ablation-exec", map[string]string{
		"decouple_gain_pct": "gain_%",
	})
}

// benchTCPTransport pumps b.N envelopes through a localhost TCP pair with
// the given transport batching config and reports envelopes per second.
// The workload is identical across configs — only the framing differs —
// so the two benchmarks below compare the batched send path against the
// per-envelope baseline at equal client load.
func benchTCPTransport(b *testing.B, batchMax int, linger time.Duration) {
	b.Helper()
	rx, err := transport.NewTCP(types.ReplicaNode(1), "127.0.0.1:0", nil, 1, 1<<15)
	if err != nil {
		b.Fatal(err)
	}
	defer rx.Close()
	tx, err := transport.NewTCPWithConfig(transport.TCPConfig{
		Self:       types.ReplicaNode(0),
		ListenAddr: "127.0.0.1:0",
		Inboxes:    1,
		Capacity:   16,
		BatchMax:   batchMax,
		Linger:     linger,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer tx.Close()
	tx.SetPeerAddr(types.ReplicaNode(1), rx.Addr())

	body := make([]byte, 256)
	auth := make([]byte, 32)
	b.SetBytes(int64(len(body) + len(auth)))
	b.ResetTimer()
	var sendErrs atomic.Int64
	go func() {
		for i := 0; i < b.N; i++ {
			if tx.Send(&types.Envelope{
				From: types.ReplicaNode(0),
				To:   types.ReplicaNode(1),
				Type: types.MsgPrepare,
				Body: body,
				Auth: auth,
			}) != nil {
				sendErrs.Add(1)
			}
		}
	}()
	received := 0
	lastProgress := time.Now()
	for received+int(rx.Drops())+int(sendErrs.Load()) < b.N {
		select {
		case <-rx.Inbox(0):
			received++
			lastProgress = time.Now()
		case <-time.After(50 * time.Millisecond):
			// Re-check drop and error counters so a dropped tail cannot
			// hang the benchmark; a write error can also discard envelopes
			// already queued on the torn-down writer, which no counter
			// sees, so a stall deadline backstops the accounting.
			if time.Since(lastProgress) > 5*time.Second {
				b.Fatalf("stalled: received=%d drops=%d sendErrs=%d of %d",
					received, rx.Drops(), sendErrs.Load(), b.N)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(received)/b.Elapsed().Seconds(), "env/s")
}

// BenchmarkTCPTransportBatched measures the batch-frame send path: each
// peer's writer coalesces queued envelopes into multi-envelope frames,
// one write syscall per batch.
func BenchmarkTCPTransportBatched(b *testing.B) {
	benchTCPTransport(b, transport.DefaultBatchMax, 0)
}

// BenchmarkTCPTransportUnbatched measures the per-envelope baseline: one
// frame and one write syscall per envelope, the transport's pre-batching
// behavior.
func BenchmarkTCPTransportUnbatched(b *testing.B) {
	benchTCPTransport(b, 1, 0)
}

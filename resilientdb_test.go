package resilientdb_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"resilientdb"
)

// TestPublicAPIClusterLifecycle drives the full public surface: build a
// cluster, run load, verify ledgers, inspect blocks.
func TestPublicAPIClusterLifecycle(t *testing.T) {
	wl := resilientdb.DefaultWorkload()
	wl.Records = 1000
	c, err := resilientdb.NewCluster(resilientdb.ClusterOptions{
		N:         4,
		Clients:   4,
		Protocol:  resilientdb.PBFT,
		BatchSize: 8,
		Crypto:    resilientdb.RecommendedCrypto(),
		Workload:  wl,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	res := c.Run(context.Background(), time.Second)
	if res.Txns == 0 {
		t.Fatalf("no transactions: %s", res)
	}
	if err := c.VerifyLedgers(nil); err != nil {
		t.Fatal(err)
	}
	var blk resilientdb.Block = c.Replica(0).Ledger().Head()
	if blk.Height == 0 {
		t.Fatal("chain never grew")
	}
}

func TestPublicAPISimulate(t *testing.T) {
	res, err := resilientdb.Simulate(resilientdb.SimConfig{
		Protocol: resilientdb.SimPBFT,
		Replicas: 4,
		Clients:  800,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputTxns <= 0 {
		t.Fatalf("simulation produced no throughput: %+v", res)
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	exps := resilientdb.Experiments()
	if len(exps) < 12 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	if err := resilientdb.RunExperiment("does-not-exist", resilientdb.ScaleSmall, nil); !errors.Is(err, resilientdb.ErrUnknownExperiment) {
		t.Fatalf("unknown experiment error = %v", err)
	}
	if testing.Short() {
		t.Skip("experiment execution in -short mode")
	}
	var buf bytes.Buffer
	if err := resilientdb.RunExperiment("ablation-exec", resilientdb.ScaleSmall, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Ablation") {
		t.Fatalf("missing rendered table:\n%s", buf.String())
	}
}

func TestPublicAPICryptoPresets(t *testing.T) {
	for _, cfg := range []resilientdb.CryptoConfig{
		resilientdb.NoSig(), resilientdb.AllED25519(), resilientdb.AllRSA(), resilientdb.RecommendedCrypto(),
	} {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("preset invalid: %+v: %v", cfg, err)
		}
	}
}

// Failures: the Section 5.10 story as a live demo. Run PBFT and Zyzzyva
// clusters side by side, crash one backup in each, and watch PBFT shrug
// while Zyzzyva's fast path dies and every request pays the client
// timeout plus the commit-certificate round.
//
//	go run ./examples/failures
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"resilientdb"
)

func run(proto resilientdb.Protocol, name string) {
	wl := resilientdb.DefaultWorkload()
	wl.Records = 5_000

	c, err := resilientdb.NewCluster(resilientdb.ClusterOptions{
		N:             4,
		Clients:       8,
		Protocol:      proto,
		BatchSize:     8,
		Workload:      wl,
		ClientTimeout: 150 * time.Millisecond, // "wait for only a little time"
		Seed:          7,
	})
	if err != nil {
		log.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	healthy := c.Run(context.Background(), 1200*time.Millisecond)
	fmt.Printf("%-8s fault-free : %s\n", name, healthy)

	c.Crash(3) // crash one backup
	faulty := c.Run(context.Background(), 1200*time.Millisecond)
	fmt.Printf("%-8s one crash  : %s\n", name, faulty)

	if healthy.Txns > 0 && faulty.Txns > 0 {
		fmt.Printf("%-8s throughput retained: %.0f%%  (fast-path completions: %d → %d)\n\n",
			name, 100*faulty.Throughput/healthy.Throughput, healthy.FastPath, faulty.FastPath)
	}
}

func main() {
	fmt.Println("crashing one of four backups under each protocol...")
	run(resilientdb.PBFT, "pbft")
	run(resilientdb.Zyzzyva, "zyzzyva")
	fmt.Println("PBFT needs only 2f+1 of 3f+1 replicas, so one crash barely registers;")
	fmt.Println("Zyzzyva's fast path needs all 3f+1 responses, so one crash forces every")
	fmt.Println("request through the timeout and the slow commit-certificate phase.")
}

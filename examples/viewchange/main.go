// Viewchange: crash the PBFT primary mid-run and watch the cluster elect
// a new one and keep committing. Clients that stop hearing back
// retransmit their requests to every replica; backups whose progress
// stalls vote to change views; replica 1 takes over as the view-1 primary.
//
//	go run ./examples/viewchange
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"resilientdb"
)

func main() {
	wl := resilientdb.DefaultWorkload()
	wl.Records = 5_000

	c, err := resilientdb.NewCluster(resilientdb.ClusterOptions{
		N:             4,
		Clients:       4,
		Protocol:      resilientdb.PBFT,
		BatchSize:     8,
		Workload:      wl,
		ClientTimeout: 100 * time.Millisecond,
		ViewTimeout:   200 * time.Millisecond, // progress watchdog
		Seed:          11,
	})
	if err != nil {
		log.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	before := c.Run(context.Background(), 800*time.Millisecond)
	fmt.Printf("view 0 (replica 0 leads): %s\n", before)
	fmt.Printf("replica 1 view: %d, is primary: %v\n\n", c.Replica(1).Stats().View, c.Replica(1).IsPrimary())

	fmt.Println("crashing the primary (replica 0)...")
	c.Crash(0)

	after := c.Run(context.Background(), 3*time.Second)
	fmt.Printf("after view change: %s\n", after)
	for i := 1; i < 4; i++ {
		s := c.Replica(i).Stats()
		fmt.Printf("replica %d: view=%d primary=%v height=%d\n",
			i, s.View, c.Replica(i).IsPrimary(), s.LedgerHeight)
	}

	live := func(i int) bool { return i != 0 }
	if err := c.VerifyLedgers(live); err != nil {
		log.Fatalf("ledger divergence after view change: %v", err)
	}
	fmt.Println("\nsurviving ledgers validate and agree across the view change ✓")
}

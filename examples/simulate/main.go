// Simulate: replay the paper's headline experiment (Figure 1) at full
// scale — up to 32 replicas with 8 cores each and tens of thousands of
// closed-loop clients — using the deterministic simulator, then print the
// Figure 13 signature-scheme comparison.
//
//	go run ./examples/simulate
package main

import (
	"fmt"
	"log"
	"os"

	"resilientdb"
)

func main() {
	fmt.Println("Figure 1 — a well-crafted PBFT system vs a protocol-centric Zyzzyva:")
	fmt.Printf("%-10s %-22s %-26s\n", "replicas", "ResilientDB-PBFT", "Zyzzyva (protocol-centric)")
	for _, n := range []int{4, 8, 16, 32} {
		pbft, err := resilientdb.Simulate(resilientdb.SimConfig{
			Protocol: resilientdb.SimPBFT,
			Replicas: n,
			Clients:  8000,
		})
		if err != nil {
			log.Fatal(err)
		}
		zyz, err := resilientdb.Simulate(resilientdb.SimConfig{
			Protocol:       resilientdb.SimZyzzyva,
			Replicas:       n,
			Clients:        8000,
			BatchThreads:   -1, // monolithic: no batch threads,
			ExecuteThreads: -1, // no execute thread — all work on the worker
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %-22s %-26s\n", n,
			fmt.Sprintf("%.0fK txn/s", pbft.ThroughputTxns/1000),
			fmt.Sprintf("%.0fK txn/s (+%.0f%% for PBFT)", zyz.ThroughputTxns/1000,
				(pbft.ThroughputTxns/zyz.ThroughputTxns-1)*100))
	}

	fmt.Println("\nFigure 13 — signature schemes (full experiment via the suite):")
	if err := resilientdb.RunExperiment("fig13", resilientdb.ScaleSmall, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// Quickstart: run a 4-replica PBFT cluster in one process, drive it with
// closed-loop YCSB clients for a couple of seconds, then inspect the
// blockchain every replica built.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"resilientdb"
)

func main() {
	wl := resilientdb.DefaultWorkload()
	wl.Records = 10_000 // keep the demo table small

	c, err := resilientdb.NewCluster(resilientdb.ClusterOptions{
		N:         4,
		Clients:   8,
		Protocol:  resilientdb.PBFT,
		BatchSize: 16,
		Crypto:    resilientdb.RecommendedCrypto(),
		Workload:  wl,
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	fmt.Println("running 8 clients against 4 replicas for 2s...")
	res := c.Run(context.Background(), 2*time.Second)
	fmt.Printf("result: %s\n\n", res)

	// Every replica independently maintains the blockchain (Section 2.2);
	// verify the chains validate and agree.
	if err := c.VerifyLedgers(nil); err != nil {
		log.Fatalf("ledger verification failed: %v", err)
	}
	fmt.Println("all 4 ledgers validate and agree ✓")

	// Walk the tail of replica 0's chain: each block binds a batch digest
	// and carries its 2f+1 commit certificate (Section 4.6).
	led := c.Replica(0).Ledger()
	fmt.Printf("\nreplica 0 chain height: %d (mode: %s)\n", led.Height(), led.Mode())
	blocks := led.Blocks()
	from := len(blocks) - 3
	if from < 0 {
		from = 0
	}
	for _, b := range blocks[from:] {
		fmt.Printf("  block %4d  seq=%-4d view=%d txns=%-4d digest=%x proof=%d sigs\n",
			b.Height, b.Seq, b.View, b.TxnCount, b.Digest[:6], len(b.CommitProof))
	}

	// The execution layer applied every write to the record store.
	fmt.Printf("\nreplica 0 store holds %d records after execution\n", c.Replica(0).Store().Len())
	s := c.Replica(0).Stats()
	fmt.Printf("replica 0 pipeline: txns=%d batches=%d msgs in/out=%d/%d view=%d\n",
		s.TxnsExecuted, s.BatchesExecuted, s.MsgsIn, s.MsgsOut, s.View)
}

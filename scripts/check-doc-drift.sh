#!/bin/sh
# check-doc-drift.sh — fail if any command-line flag registered in
# cmd/*/main.go is missing from the docs/ARCHITECTURE.md knob reference.
#
# The knob reference only stays trustworthy if it cannot silently rot:
# every `flag.Type("name", ...)` registration must appear in the docs as
# a backticked `-name` cell. Run from the repository root (CI does).
set -eu

cd "$(dirname "$0")/.."
docs=docs/ARCHITECTURE.md

if [ ! -f "$docs" ]; then
    echo "doc drift: $docs does not exist" >&2
    exit 1
fi

# Both registration forms: flag.Int("name", ...) and
# flag.IntVar(&x, "name", ...).
flags=$({
    grep -ohE 'flag\.[A-Za-z0-9]+\("[a-zA-Z0-9-]+"' cmd/*/main.go \
        | sed -E 's/.*\("([^"]+)"$/\1/'
    grep -ohE 'flag\.[A-Za-z0-9]+Var\([^,]+,[[:space:]]*"[a-zA-Z0-9-]+"' cmd/*/main.go \
        | sed -E 's/.*"([^"]+)"$/\1/'
} | sort -u)

if [ -z "$flags" ]; then
    echo "doc drift: extracted no flags from cmd/*/main.go — the extraction regex has rotted" >&2
    exit 1
fi

status=0
for f in $flags; do
    if ! grep -q -- "\`-$f\`" "$docs"; then
        echo "doc drift: flag -$f (cmd/*/main.go) is not documented in $docs" >&2
        status=1
    fi
done

if [ "$status" -ne 0 ]; then
    echo "doc drift: add the missing flags to the knob reference in $docs" >&2
fi
exit $status

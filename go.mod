module resilientdb

go 1.24
